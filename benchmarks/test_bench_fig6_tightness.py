"""E6 — Figures 6/7: tightness of GREEDYTRACKING's factor 3.

Paper claim: on the gadget (g blocks of 2g overlapping unit interval jobs
plus 2g spanning flexible jobs), the optimum is 2g + 2 - eps while an
adversarial DP placement can drive the pipeline toward (6 - o(eps))g — ratio
-> 3.  Tie-breaking inside GREEDYTRACKING decides how close a concrete run
gets; we report the paper's asymptotic limit next to the measured costs for
both the adversarial and the optimal placement.
"""

import pytest

from repro.busytime import schedule_flexible
from repro.instances import figure6


@pytest.mark.parametrize("g", [2, 3, 4])
def test_fig6_placements(g, emit):
    eps = 0.1
    gad = figure6(g, eps=eps)
    opt_claim = gad.facts["opt_busy_time"]

    optimal = schedule_flexible(
        gad.instance, g, starts=gad.witness["optimal_starts"]
    )
    optimal.verify()
    adversarial = schedule_flexible(
        gad.instance, g, starts=gad.witness["adversarial_starts"]
    )
    adversarial.verify()

    emit(
        f"E6 / Figures 6-7 — GREEDYTRACKING tightness gadget, g={g}",
        ["placement", "busy time", "ratio vs OPT claim"],
        [
            ["paper OPT (claim)", opt_claim, 1.0],
            ["GT on optimal placement", optimal.total_busy_time,
             optimal.total_busy_time / opt_claim],
            ["GT on adversarial DP placement", adversarial.total_busy_time,
             adversarial.total_busy_time / opt_claim],
            ["paper adversarial limit", f"(6-o(eps))g = {6*g}", 3.0],
        ],
    )

    # Shape assertions: the paper's OPT is achievable (GT recovers it on the
    # good placement), the adversarial placement is never better, and every
    # run respects the proven factor 3.
    assert optimal.total_busy_time == pytest.approx(opt_claim, abs=1e-6)
    assert adversarial.total_busy_time >= optimal.total_busy_time - 1e-9
    assert adversarial.total_busy_time <= 3 * opt_claim + 1e-6


def test_adversarial_penalty_grows_with_g():
    """The adversarial placement's absolute penalty increases with g."""
    penalties = []
    for g in (2, 3, 4):
        gad = figure6(g, eps=0.1)
        adv = schedule_flexible(
            gad.instance, g, starts=gad.witness["adversarial_starts"]
        )
        penalties.append(adv.total_busy_time - gad.facts["opt_busy_time"])
    assert penalties[0] >= -1e-9
    assert penalties == sorted(penalties)


@pytest.mark.parametrize("g", [3])
def test_fig6_pipeline_runtime(benchmark, g):
    gad = figure6(g, eps=0.1)
    s = benchmark(
        schedule_flexible,
        gad.instance,
        g,
        starts=gad.witness["adversarial_starts"],
    )
    assert s.is_valid()
