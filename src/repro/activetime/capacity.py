"""Capacity analysis: how much parallelism does an instance need?

Planning questions around the active-time model that the feasibility oracle
(Figure 2) answers directly:

* :func:`minimum_feasible_capacity` — the smallest ``g`` for which any
  schedule exists (binary search over ``g``; feasibility is monotone in
  ``g`` because extra capacity only relaxes the flow network);
* :func:`capacity_frontier` — the exact active-time cost as a function of
  ``g``, i.e. the energy/parallelism trade-off curve of the capacity
  planning example.

Lower bound used to seed the search: a slot ``t`` can host at most ``g``
units, so ``g >= ceil(max_t demand pressure)`` where the pressure of any
window is its mass over its width (a Hall-type bound).
"""

from __future__ import annotations

from ..core.jobs import Instance
from ..core.validation import require_integral
from ..flow.feasibility import ActiveTimeFeasibility
from .exact import exact_active_time

__all__ = [
    "minimum_feasible_capacity",
    "capacity_frontier",
    "window_pressure_bound",
]


def window_pressure_bound(instance: Instance) -> int:
    """A lower bound on any feasible capacity.

    For every interval ``[a, b]`` of slots, the jobs whose windows lie inside
    it must fit: ``g >= ceil(mass(a, b) / (b - a + 1))``.  Evaluated over all
    windows with endpoints at job releases/deadlines (sufficient, since the
    mass function only changes there).
    """
    require_integral(instance)
    if instance.n == 0:
        return 1
    points = sorted(
        {j.integral_window()[0] for j in instance.jobs}
        | {j.integral_window()[1] for j in instance.jobs}
    )
    best = 1
    for i, a in enumerate(points):
        for b in points[i + 1 :]:
            width = b - a
            if width <= 0:
                continue
            mass = sum(
                j.integral_length()
                for j in instance.jobs
                if j.integral_window()[0] >= a and j.integral_window()[1] <= b
            )
            need = -(-mass // width)
            best = max(best, need)
    return best


def minimum_feasible_capacity(instance: Instance) -> int:
    """The smallest ``g`` admitting any feasible active-time schedule.

    Binary search between the window-pressure bound and the trivial upper
    bound ``n`` (with ``g = n`` every slot can host every live job, and each
    job has enough slots in its window by the :class:`Job` invariant).
    """
    require_integral(instance)
    if instance.n == 0:
        return 1

    def feasible(g: int) -> bool:
        oracle = ActiveTimeFeasibility(instance, g)
        return oracle.is_feasible(range(1, instance.horizon + 1))

    lo = window_pressure_bound(instance)
    hi = max(lo, instance.n)
    if not feasible(hi):  # pragma: no cover - impossible by Job invariant
        raise RuntimeError("instance infeasible even at g = n")
    while lo < hi:
        mid = (lo + hi) // 2
        if feasible(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def capacity_frontier(
    instance: Instance, *, g_max: int | None = None
) -> list[tuple[int, int]]:
    """Exact optimal active time for each capacity ``g_min .. g_max``.

    Returns ``(g, optimal cost)`` pairs; the curve is non-increasing and
    plateaus once ``g`` exceeds the peak demand any optimal schedule needs.
    """
    require_integral(instance)
    if instance.n == 0:
        return []
    g_min = minimum_feasible_capacity(instance)
    top = g_max if g_max is not None else instance.n
    frontier: list[tuple[int, int]] = []
    for g in range(g_min, max(g_min, top) + 1):
        frontier.append((g, exact_active_time(instance, g).cost))
    return frontier
