"""Backend registry: name -> :class:`SolverBackend`, with capability routing.

Selection rules, in order:

1. an explicit ``backend=`` argument (a name or a backend instance) wins;
2. otherwise the ``REPRO_LP_BACKEND`` environment variable;
3. otherwise the default (``scipy-highs``), falling back to the first
   *available* backend that has every required capability.

A typo'd name raises ``ValueError`` carrying the full backend menu —
the same UX as the sweep CLI's generator/algorithm filters — so scripts
fail loudly instead of silently running a different solver.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import replace
from typing import Any, Iterable, Iterator, Mapping

from ..obs import REGISTRY as OBS
from .base import SolverBackend, SolverResult
from .highs_backend import HighsBackend
from .ir import LinearProgram
from .mip_backend import PythonMipBackend
from .reference import ReferenceBackend
from .scipy_backend import ScipyHighsBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "available_backend_names",
    "backend_menu",
    "backend_names",
    "backend_status",
    "capture_solves",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "solve_ir",
]

#: Latency of every backend ``solve()`` routed through :func:`solve_ir`,
#: labeled by the backend that ran and the program kind it was handed.
_BACKEND_SECONDS = OBS.histogram(
    "repro_backend_solve_seconds",
    "LP/MILP backend solve latency via solve_ir",
    ("backend", "kind"),
)
_BACKEND_SOLVES = OBS.counter(
    "repro_backend_solves_total",
    "Backend solves by terminal status",
    ("backend", "status"),
)

# Per-thread capture channel: the engine's task executor opens it around
# a solve so per-backend facts (who ran, warm or cold) ride home in the
# task's trace even though the algorithm adapters between them don't
# pass SolverResult.extra through.
_CAPTURE = threading.local()


@contextmanager
def capture_solves() -> Iterator[list[dict[str, Any]]]:
    """Collect one event dict per :func:`solve_ir` call in this thread.

    Each event carries ``backend``/``kind``/``status``/``elapsed`` plus
    the warm-start facts a resolve-capable backend tags onto
    ``SolverResult.extra`` (``warm_start_used``, ``structure_hit``).
    Nested captures stack: the inner scope sees only its own solves.
    """
    previous = getattr(_CAPTURE, "events", None)
    _CAPTURE.events = events = []
    try:
        yield events
    finally:
        _CAPTURE.events = previous

#: Environment variable consulted when no explicit backend is requested.
BACKEND_ENV_VAR = "REPRO_LP_BACKEND"

#: The backend used when nothing is requested anywhere.
DEFAULT_BACKEND = "scipy-highs"

_BACKENDS: dict[str, SolverBackend] = {}


def register_backend(backend: SolverBackend) -> SolverBackend:
    """Add a backend instance; duplicate names are an error."""
    if backend.name in _BACKENDS:
        raise ValueError(f"backend {backend.name!r} already registered")
    _BACKENDS[backend.name] = backend
    return backend


def backend_names() -> tuple[str, ...]:
    """Every registered backend name, sorted."""
    return tuple(sorted(_BACKENDS))


def available_backend_names() -> tuple[str, ...]:
    """Names of backends whose dependencies are importable here."""
    return tuple(
        name for name in backend_names() if _BACKENDS[name].available()
    )


def backend_menu() -> str:
    """Human-readable list of backends with availability notes."""
    parts = []
    for name in backend_names():
        backend = _BACKENDS[name]
        if backend.available():
            caps = ",".join(sorted(backend.capabilities()))
            parts.append(f"{name} ({caps})")
        else:
            reason = getattr(backend, "unavailable_reason", lambda: "")()
            parts.append(f"{name} (unavailable: {reason})" if reason
                         else f"{name} (unavailable)")
    return "; ".join(parts)


def backend_status(name: str) -> dict[str, Any]:
    """One backend's name, capabilities and availability, JSON-ready.

    The shared source for every backend listing — the ``repro algos``
    table and the serving layer's ``GET /algos`` both render from this,
    so their menus cannot drift apart.
    """
    backend = get_backend(name)
    if backend.available():
        status = "default" if name == DEFAULT_BACKEND else "available"
        reason = None
    else:
        status = "unavailable"
        reason = getattr(backend, "unavailable_reason", lambda: "")() or None
    return {
        "name": name,
        "capabilities": sorted(backend.capabilities()),
        "status": status,
        **({"reason": reason} if reason else {}),
    }


def get_backend(name: str) -> SolverBackend:
    """Look one backend up by name; unknown names get the full menu."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available backends: {backend_menu()}"
        ) from None


def resolve_backend(
    backend: str | SolverBackend | None = None,
    *,
    require: Iterable[str] = (),
) -> SolverBackend:
    """Pick the backend for a solve, enforcing required capabilities.

    Parameters
    ----------
    backend:
        Explicit request — a registered name, a backend instance, or
        ``None`` for "environment, then default".
    require:
        Capabilities the solve needs (``{"lp"}``, ``{"milp"}``, ...).
        An *explicitly* requested backend missing one is an error; the
        *default* silently falls back to the first available backend
        that has them all (capability routing).
    """
    need = frozenset(require)
    if backend is not None and not isinstance(backend, str):
        missing = need - backend.capabilities()
        if missing:
            raise ValueError(
                f"backend {backend.name!r} lacks required "
                f"capabilities {sorted(missing)}"
            )
        return backend

    explicit = backend if backend is not None else os.environ.get(
        BACKEND_ENV_VAR
    )
    if explicit:
        chosen = get_backend(explicit)
        if not chosen.available():
            reason = getattr(chosen, "unavailable_reason", lambda: "")()
            raise ValueError(
                f"backend {explicit!r} is not available"
                + (f": {reason}" if reason else "")
                + f"; available backends: {backend_menu()}"
            )
        missing = need - chosen.capabilities()
        if missing:
            raise ValueError(
                f"backend {explicit!r} lacks required capabilities "
                f"{sorted(missing)}; available backends: {backend_menu()}"
            )
        return chosen

    default = _BACKENDS.get(DEFAULT_BACKEND)
    if (
        default is not None
        and default.available()
        and need <= default.capabilities()
    ):
        return default
    for name in backend_names():
        candidate = _BACKENDS[name]
        if candidate.available() and need <= candidate.capabilities():
            return candidate
    raise ValueError(
        f"no available backend provides {sorted(need)}; "
        f"registered backends: {backend_menu()}"
    )


def solve_ir(
    lp: LinearProgram,
    *,
    backend: str | SolverBackend | None = None,
    time_limit: float | None = None,
    options: Mapping[str, Any] | None = None,
) -> SolverResult:
    """Route one IR solve through the registry — the main entry point.

    The required capability (``lp`` vs ``milp``) is derived from the
    program itself, so callers cannot accidentally hand a MILP to an
    LP-only backend.
    """
    chosen = resolve_backend(backend, require={lp.required_capability})
    start = time.perf_counter()
    result = chosen.solve(lp, time_limit=time_limit, options=options)
    elapsed = time.perf_counter() - start
    if result.elapsed == 0.0:  # backend didn't time itself
        result = replace(result, elapsed=elapsed)
    kind = lp.required_capability
    _BACKEND_SECONDS.labels(backend=chosen.name, kind=kind).observe(elapsed)
    _BACKEND_SOLVES.labels(backend=chosen.name, status=result.status).inc()
    events = getattr(_CAPTURE, "events", None)
    if events is not None:
        extra = result.extra or {}
        events.append(
            {
                "backend": chosen.name,
                "kind": kind,
                "status": result.status,
                "elapsed": elapsed,
                "warm_start_used": bool(extra.get("warm_start_used")),
                "structure_hit": bool(extra.get("structure_hit")),
            }
        )
    return result


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------
register_backend(ScipyHighsBackend())
register_backend(HighsBackend())
register_backend(PythonMipBackend())
register_backend(ReferenceBackend())


def _register_highs_gauges() -> None:
    # Collect-time callbacks: resolve_stats() is read when /metrics is
    # scraped, so the gauges never lag the backend's own counters.
    gauge = OBS.gauge(
        "repro_highs_resolve",
        "Resident-model HiGHS re-solve statistics",
        ("stat",),
    )
    backend = _BACKENDS["highs"]
    for stat in ("hits", "misses", "resident", "warm_starts",
                 "bound_probe_skips"):
        gauge.labels(stat=stat).set_function(
            lambda s=stat: float(backend.resolve_stats().get(s, 0))
        )


_register_highs_gauges()
