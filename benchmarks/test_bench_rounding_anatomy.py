"""E18 (ablation) — anatomy of the LP-rounding algorithm.

Design-choice ablations DESIGN.md calls out for the Theorem-2 implementation:

* how often each proof mechanism fires (carry/proxy vs half-open vs
  dependent/trio/filler charges) across instance families;
* whether the feasibility probe ("try to close a barely open slot") earns
  its cost — we compare against an ablated variant that always opens the
  fractional slot (still 2-approximate by the same charging, but wasteful);
* the cost of strict invariant checking.
"""

from collections import Counter

import pytest

from repro.activetime import round_active_time
from repro.activetime.rightshift import right_shift, snap
from repro.instances import (
    lp_gap,
    random_active_time_instance,
    tight_window_instance,
)
from repro.lp import solve_active_time_lp


def test_mechanism_histogram(rng, emit):
    rows = []
    for label, factory in [
        ("random n=12", lambda: random_active_time_instance(12, 16, rng=rng)),
        ("tight windows", lambda: tight_window_instance(12, 3, rng=rng)),
        ("lp_gap g=3", lambda: lp_gap(3).instance),
    ]:
        actions = Counter()
        charges = Counter()
        for _ in range(8):
            inst = factory()
            try:
                sol = round_active_time(inst, 3, strict=True)
            except RuntimeError:
                continue
            for it in sol.iterations:
                actions[it.action] += 1
            for rec in sol.ledger.records:
                charges[rec.kind] += 1
        rows.append(
            [label, actions["none"], actions["half"], actions["carry"],
             actions["charged"], charges["dependent"], charges["trio"],
             charges["filler"]]
        )
    emit(
        "E18 — rounding mechanism usage (iterations by outcome)",
        ["family", "integral", "half", "carry(proxy)", "charged",
         "dependents", "trios", "fillers"],
        rows,
    )


def _rounding_without_probe(instance, g):
    """Ablation: always open ceil(Y_i) slots (skip the closing probe)."""
    lp = solve_active_time_lp(instance, g)
    shifted = right_shift(lp)
    opened: set[int] = set()
    proxy = 0.0
    for (a, b), mass in zip(shifted.blocks, shifted.masses):
        y_eff = snap(mass + proxy)
        proxy = 0.0
        whole = int(y_eff)
        frac = snap(y_eff - whole)
        for k in range(whole):
            if b - k >= a:
                opened.add(b - k)
        if frac > 0:
            cand = b - whole
            opened.add(cand if cand >= a else b)
    from repro.flow import ActiveTimeFeasibility

    oracle = ActiveTimeFeasibility(instance, g)
    if not oracle.is_feasible(opened):
        # the ablated variant can need repairs — count them as cost
        for t in range(1, instance.horizon + 1):
            if t not in opened:
                opened.add(t)
                if oracle.is_feasible(opened):
                    break
    return len(opened), lp.objective


def test_probe_ablation(rng, emit):
    """Does 'try to close' reduce cost vs always-open-ceil?"""
    better = worse = same = 0
    total_probe = total_ablated = 0.0
    for _ in range(15):
        inst = random_active_time_instance(10, 14, rng=rng)
        try:
            sol = round_active_time(inst, 3, strict=True)
        except RuntimeError:
            continue
        ablated_cost, lp_obj = _rounding_without_probe(inst, 3)
        total_probe += sol.cost
        total_ablated += ablated_cost
        if sol.cost < ablated_cost:
            better += 1
        elif sol.cost > ablated_cost:
            worse += 1
        else:
            same += 1
        # both stay 2-approximate
        assert sol.cost <= 2 * lp_obj + 1e-6
        assert ablated_cost <= 2 * lp_obj + 1 + 1e-6  # ceil slack
    emit(
        "E18 — probe ablation (full algorithm vs always-open-ceil)",
        ["probe better", "probe worse", "equal",
         "mean cost (probe)", "mean cost (ablated)"],
        [[better, worse, same,
          total_probe / max(1, better + worse + same),
          total_ablated / max(1, better + worse + same)]],
    )
    assert worse == 0  # closing only ever helps


@pytest.mark.parametrize("strict", [False, True], ids=["lenient", "strict"])
def test_strictness_runtime(benchmark, rng, strict):
    inst = random_active_time_instance(14, 18, rng=rng)
    try:
        sol = benchmark(round_active_time, inst, 3, strict=strict)
    except RuntimeError:
        pytest.skip("instance infeasible at g=3")
    assert sol.schedule.is_valid()
