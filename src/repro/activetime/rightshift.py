"""Right-shifting preprocessing of an optimal LP solution (Section 3.1).

The rounding algorithm wants the fractional openings pushed as late as
possible within each deadline block: for block ``i`` ending at deadline
``t_{d_i}`` with mass ``Y_i`` (Definition 6), the right-shifted solution
opens slots ``t_{d_i} - floor(Y_i) + 1 .. t_{d_i}`` fully, puts the remainder
``Y_i - floor(Y_i)`` on slot ``t_{d_i} - floor(Y_i)``, and closes everything
earlier in the block.  Lemma 3 proves the result still admits a feasible
fractional assignment (``LP2``).

Slot classification (Section 3):

* *fully open*  — ``y_t = 1``,
* *half open*   — ``1/2 <= y_t < 1``,
* *barely open* — ``0 < y_t < 1/2``,
* *closed*      — ``y_t = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..lp.model import build_active_time_model
from ..lp.solve import ActiveTimeLPSolution
from ..solvers import SolverBackend, solve_ir

__all__ = [
    "RightShiftedSolution",
    "right_shift",
    "classify_slot",
    "snap",
    "SNAP_TOL",
]

#: LP solvers return values like ``0.9999999997``; anything within this
#: tolerance of an integer (or of 1/2 in comparisons) is snapped.
SNAP_TOL = 1e-6

SlotKind = Literal["closed", "barely", "half", "full"]


def snap(v: float) -> float:
    """Round ``v`` to the nearest integer when within :data:`SNAP_TOL`."""
    r = round(v)
    return float(r) if abs(v - r) <= SNAP_TOL else float(v)


def classify_slot(y: float) -> SlotKind:
    """The paper's four-way slot classification."""
    v = snap(y)
    if v <= 0.0:
        return "closed"
    if v >= 1.0:
        return "full"
    if v >= 0.5:
        return "half"
    return "barely"


@dataclass(frozen=True)
class RightShiftedSolution:
    """The right-shifted fractional solution (``LP2`` structure).

    Attributes
    ----------
    lp:
        The optimal LP solution this was derived from.
    y:
        Right-shifted openings, 1-based like :attr:`ActiveTimeLPSolution.y`.
    blocks:
        Deadline blocks ``(first_slot, deadline)`` shared with the LP object.
    masses:
        Block masses ``Y_i`` (identical to the LP's, by construction).
    """

    lp: ActiveTimeLPSolution
    y: np.ndarray
    blocks: tuple[tuple[int, int], ...]
    masses: tuple[float, ...]

    @property
    def objective(self) -> float:
        """Total fractional mass — unchanged from the LP optimum."""
        return float(self.y[1:].sum())

    def fully_open_slots(self) -> list[int]:
        """Slots with ``y_t = 1`` after shifting."""
        return [
            t for t in range(1, len(self.y)) if classify_slot(self.y[t]) == "full"
        ]

    def fractional_slot_of_block(self, i: int) -> tuple[int, float] | None:
        """The (slot, value) carrying block ``i``'s fractional remainder."""
        a, b = self.blocks[i]
        mass = snap(self.masses[i])
        frac = mass - int(mass)
        if frac <= 0.0:
            return None
        slot = b - int(mass)
        return (slot, frac) if slot >= a else None

    def is_feasible_fractional(
        self, *, backend: str | SolverBackend | None = None
    ) -> bool:
        """Check Lemma 3: a feasible fractional assignment exists for this ``y``.

        Solves the feasibility program ``LP2`` — the model's IR with a
        zero objective and the ``y`` variables pinned to the shifted
        values — on any registered backend.
        """
        model = build_active_time_model(self.lp.instance, self.lp.g)
        if model.num_vars == 0:
            return True
        lp = model.to_linear_program().as_feasibility()
        lb, ub = lp.bounds_arrays()
        for t in range(1, model.T + 1):
            v = min(1.0, max(0.0, float(self.y[t])))
            lb[t - 1] = ub[t - 1] = v
        result = solve_ir(lp.with_bounds(lb, ub), backend=backend)
        return result.ok


def right_shift(lp: ActiveTimeLPSolution) -> RightShiftedSolution:
    """Apply the Section-3.1 transformation to an optimal LP solution."""
    blocks = tuple(lp.deadline_blocks())
    masses = tuple(snap(m) for m in lp.block_masses())
    y = np.zeros_like(lp.y)
    for (a, b), mass in zip(blocks, masses):
        if mass <= 0.0:
            continue
        whole = int(mass)
        frac = snap(mass - whole)
        if whole > b - a + 1:
            raise RuntimeError(
                f"block [{a},{b}] cannot carry mass {mass}; LP solution corrupt"
            )
        for t in range(b - whole + 1, b + 1):
            y[t] = 1.0
        if frac > 0.0:
            y[b - whole] = frac
    return RightShiftedSolution(lp=lp, y=y, blocks=blocks, masses=masses)
