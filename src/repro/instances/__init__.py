"""Instance families: random generators and the paper's gadget constructions."""

from .gadgets import (
    Gadget,
    figure1,
    figure3,
    figure6,
    figure8,
    figure9,
    figure10,
    lp_gap,
)
from .traces import bursty_trace, diurnal_trace, heavy_tailed_trace
from .generators import (
    PROBLEM_GENERATORS,
    SWEEP_GENERATORS,
    random_active_time_instance,
    random_clique_instance,
    random_flexible_instance,
    random_interval_instance,
    random_laminar_instance,
    random_proper_instance,
    random_unit_instance,
    tight_window_instance,
)

__all__ = [
    "Gadget",
    "PROBLEM_GENERATORS",
    "SWEEP_GENERATORS",
    "figure1",
    "figure3",
    "figure6",
    "figure8",
    "figure9",
    "figure10",
    "lp_gap",
    "bursty_trace",
    "diurnal_trace",
    "heavy_tailed_trace",
    "random_active_time_instance",
    "random_clique_instance",
    "random_flexible_instance",
    "random_interval_instance",
    "random_laminar_instance",
    "random_proper_instance",
    "random_unit_instance",
    "tight_window_instance",
]
