"""Experiment sweeps: a grid of generators x algorithms x g values.

``build_sweep_tasks`` expands the grid deterministically (sorted cell
order, seeds derived from ``base_seed`` plus the cell index), so the
same arguments always produce byte-identical task digests — which is
what makes the result cache effective across runs.  ``run_sweep``
drives the grid through a :class:`~repro.engine.runner.BatchRunner`
and hands back results plus the aggregate table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..instances import PROBLEM_GENERATORS, SWEEP_GENERATORS
from ..solvers import resolve_backend
from .cache import ResultCache
from .registry import REGISTRY, backend_task_params
from .results import aggregate_table
from .runner import BatchRunner
from .workers import Task, TaskResult, make_task

__all__ = ["SweepGrid", "build_sweep_tasks", "run_sweep", "default_grid"]

#: Registry-backed algorithm defaults: cheap approximation algorithms only
#: (exact solvers are opt-in; they are tagged ``expensive``).
def _default_algorithms(problem: str) -> tuple[str, ...]:
    return tuple(
        spec.name
        for spec in REGISTRY.specs(problem)
        if "expensive" not in spec.capabilities
        and "unit-only" not in spec.capabilities
    )


@dataclass(frozen=True)
class SweepGrid:
    """One problem's slice of a sweep grid.

    ``backend`` routes every LP/MILP-based algorithm in the grid through
    the named :mod:`repro.solvers` backend; combinatorial algorithms
    ignore it (capability routing).  ``None`` keeps the default backend.
    """

    problem: str
    generators: tuple[str, ...]
    algorithms: tuple[str, ...]
    g_values: tuple[int, ...] = (2, 3)
    instances_per_cell: int = 3
    n: int = 10
    horizon: int = 20
    timeout: float | None = None
    backend: str | None = None

    def validate(self) -> None:
        if self.problem not in PROBLEM_GENERATORS:
            raise ValueError(
                f"unknown problem {self.problem!r}; "
                f"choose from {sorted(PROBLEM_GENERATORS)}"
            )
        allowed = PROBLEM_GENERATORS[self.problem]
        for gen in self.generators:
            if gen not in SWEEP_GENERATORS:
                raise ValueError(
                    f"unknown generator {gen!r}; "
                    f"choose from {sorted(SWEEP_GENERATORS)}"
                )
            if gen not in allowed:
                raise ValueError(
                    f"generator {gen!r} does not produce valid "
                    f"{self.problem!r} instances; choose from {allowed}"
                )
        for name in self.algorithms:
            REGISTRY.get(self.problem, name)  # raises KeyError if unknown
        if self.backend is not None:
            # Typos get the backend menu; capability needs are checked
            # per algorithm when tasks are expanded.
            resolve_backend(self.backend)

    def task_params(self, algorithm: str) -> dict[str, str]:
        """Per-task params for ``algorithm`` under this grid's backend.

        Delegates to :func:`~repro.engine.registry.backend_task_params`
        (non-strict: a grid legitimately mixes LP-based and
        combinatorial algorithms, the latter simply get no param).
        """
        return backend_task_params(
            self.problem, algorithm, self.backend, strict=False
        )


def default_grid(problem: str) -> SweepGrid:
    """The stock grid for one problem: two generator families, all cheap
    registered algorithms, two g values.

    Active-time defaults use g in (3, 4): the stock generator density
    (n=10 jobs on a 20-slot horizon) is routinely infeasible at g=2,
    and a default sweep should exercise solvers, not error paths.
    """
    generators = PROBLEM_GENERATORS[problem][:2]
    return SweepGrid(
        problem=problem,
        generators=generators,
        algorithms=_default_algorithms(problem),
        g_values=(3, 4) if problem == "active" else (2, 3),
    )


def build_sweep_tasks(
    grids: Sequence[SweepGrid],
    *,
    base_seed: int = 2014,
    limit: int | None = None,
) -> list[Task]:
    """Expand grids into a deterministic, content-addressed task list.

    The seed for each task is ``base_seed`` plus a stable offset from
    its position in the sorted grid expansion, so repeated invocations
    regenerate identical instances (and hence identical digests).
    """
    tasks: list[Task] = []
    if limit is not None and limit <= 0:
        return tasks
    for grid in grids:
        grid.validate()
        cells = [
            (gen, algorithm, g)
            for gen in grid.generators
            for algorithm in grid.algorithms
            for g in grid.g_values
        ]
        # The seed depends on (generator, g, rep) only — the same instance
        # is shared across the algorithms in a cell so their ratios are
        # comparable — so memoize generation rather than rebuilding the
        # identical instance once per algorithm.
        instances: dict[tuple[str, int, int], object] = {}
        # Structure-aware ordering: the sorted cell expansion keeps every
        # (generator, algorithm) group contiguous across its g values and
        # reps, so the chain of near-identical LP/MILP structures one
        # group emits lands consecutively in the task list.  Each task is
        # tagged with its group so the runner can keep the whole chain on
        # one worker process, where a resolve-capable backend (see
        # ``repro.solvers.highs_backend``) re-solves warm instead of
        # rebuilding models from scratch.
        for gen, algorithm, g in sorted(cells):
            group = _structure_group(grid, gen, algorithm)
            for rep in range(grid.instances_per_cell):
                seed = _instance_seed(base_seed, gen, g, rep)
                key = (gen, g, rep)
                if key not in instances:
                    instances[key] = SWEEP_GENERATORS[gen](
                        grid.n, grid.horizon, g, seed
                    )
                instance = instances[key]
                tasks.append(
                    make_task(
                        index=len(tasks),
                        problem=grid.problem,
                        algorithm=algorithm,
                        g=g,
                        instance=instance,
                        params=grid.task_params(algorithm),
                        meta={
                            "generator": gen,
                            "seed": seed,
                            "rep": rep,
                            "n": grid.n,
                            "horizon": grid.horizon,
                            "structure_group": group,
                        },
                        timeout=grid.timeout,
                    )
                )
                if limit is not None and len(tasks) >= limit:
                    return tasks
    return tasks


def _structure_group(grid: SweepGrid, generator: str, algorithm: str) -> str:
    """Label for tasks whose solves share (near-)identical model structure.

    Generator family × instance size pins the constraint-matrix shape;
    the algorithm pins which model (LP relaxation vs exact MILP) is
    built from it.  The label rides in ``Task.meta`` — it does not feed
    the content digest, so grouping never perturbs cache keys.
    """
    return (
        f"{grid.problem}:{algorithm}:{generator}"
        f":n{grid.n}:h{grid.horizon}"
    )


def _instance_seed(base_seed: int, generator: str, g: int, rep: int) -> int:
    """Stable per-instance seed independent of the algorithm axis.

    Uses the full :func:`hash_str` value: folding it down (an earlier
    ``% 97``) let two generator names collide and silently share
    instances — and hence digests — across supposedly distinct
    families.  The 7919 stride keeps distinct generators at least a
    whole (g, rep) block apart.
    """
    return base_seed + 7919 * hash_str(generator) + 101 * g + rep


def hash_str(text: str) -> int:
    """Deterministic (non-salted) string hash, stable across processes."""
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) % 1_000_003
    return value


@dataclass
class SweepOutcome:
    """Everything a sweep run produces."""

    tasks: list[Task]
    results: list[TaskResult]
    cache_hits: int
    table: str = ""
    errors: int = 0
    elapsed: float = 0.0

    @property
    def summary(self) -> str:
        return (
            f"tasks: {len(self.tasks)}, cache hits: {self.cache_hits}, "
            f"errors: {self.errors}, wall time: {self.elapsed:.2f}s"
        )


def run_sweep(
    grids: Sequence[SweepGrid],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    base_seed: int = 2014,
    limit: int | None = None,
    title: str = "sweep aggregate",
    on_result: Callable[[TaskResult], None] | None = None,
    dispatcher=None,
) -> SweepOutcome:
    """Build the grid, run it, and aggregate — the one-call sweep API.

    Results are computed through the runner's streaming path;
    ``on_result`` (if given) observes each result the moment it and its
    predecessors are done, in task order — this is what backs
    ``repro sweep --stream``'s incremental JSONL output.  The worker
    pool is owned by this call and released before it returns.

    ``dispatcher`` (anything with a ``run_stream(tasks)`` yielding
    ordered results and carrying ``.stats``, in practice a
    :class:`repro.fabric.RemoteDispatcher`) replaces the local runner:
    the same grid, digests, and streaming contract, executed on remote
    ``repro serve`` hosts — ``jobs`` and ``cache`` then belong to the
    servers and are ignored here.
    """
    import time

    tasks = build_sweep_tasks(grids, base_seed=base_seed, limit=limit)
    results: list[TaskResult] = []
    start = time.perf_counter()
    if dispatcher is not None:
        stream = dispatcher.run_stream(tasks)
        for result in stream:
            if on_result is not None:
                on_result(result)
            results.append(result)
        # Fabric hits come from two layers — local digest fan-out and
        # the remote hosts' own caches; both mark results ``cached``.
        cache_hits = sum(1 for r in results if r.cached)
    else:
        with BatchRunner(jobs=jobs, cache=cache) as runner:
            stream = runner.run_stream(tasks)
            for result in stream:
                if on_result is not None:
                    on_result(result)
                results.append(result)
            cache_hits = stream.stats.cache_hits
    elapsed = time.perf_counter() - start
    return SweepOutcome(
        tasks=tasks,
        results=results,
        cache_hits=cache_hits,
        table=aggregate_table(results, title),
        errors=sum(1 for r in results if not r.ok),
        elapsed=elapsed,
    )
