"""Tests for the exact active-time oracles (MILP + brute force)."""

import pytest

from repro.activetime import (
    brute_force_active_time,
    exact_active_time,
    lower_bound_mass,
)
from repro.core import Instance
from repro.instances import random_active_time_instance


class TestExactMilp:
    def test_verifies(self, tiny_instance):
        s = exact_active_time(tiny_instance, 2)
        s.verify()
        assert s.cost == 3

    def test_empty(self):
        assert exact_active_time(Instance(tuple()), 1).cost == 0

    def test_g_one_equals_total_length(self):
        inst = Instance.from_tuples([(0, 10, 3), (0, 10, 2)])
        assert exact_active_time(inst, 1).cost == 5

    def test_large_g_packs_tightly(self):
        inst = Instance.from_tuples([(0, 3, 2)] * 5)
        assert exact_active_time(inst, 5).cost == 2

    def test_monotone_in_g(self, rng):
        for _ in range(6):
            inst = random_active_time_instance(6, 8, rng=rng)
            costs = []
            for g in (1, 2, 4):
                try:
                    costs.append(exact_active_time(inst, g).cost)
                except RuntimeError:
                    costs.append(None)
            known = [c for c in costs if c is not None]
            assert known == sorted(known, reverse=True)


class TestBruteForceCrossCheck:
    def test_matches_milp(self, rng):
        matched = 0
        for _ in range(12):
            inst = random_active_time_instance(4, 6, max_length=2, rng=rng)
            g = int(rng.integers(1, 4))
            try:
                milp = exact_active_time(inst, g)
            except RuntimeError:
                continue
            bf = brute_force_active_time(inst, g)
            assert bf.cost == milp.cost
            matched += 1
        assert matched >= 5

    def test_horizon_guard(self):
        inst = Instance.from_tuples([(0, 30, 1)])
        with pytest.raises(ValueError, match="horizon"):
            brute_force_active_time(inst, 1, max_horizon=16)

    def test_empty(self):
        assert brute_force_active_time(Instance(tuple()), 1).cost == 0

    def test_infeasible_raises(self):
        inst = Instance.from_tuples([(0, 1, 1), (0, 1, 1)])
        with pytest.raises(ValueError):
            brute_force_active_time(inst, 1)


class TestMassLowerBound:
    def test_value(self, tiny_instance):
        assert lower_bound_mass(tiny_instance, 2) == 3
        assert lower_bound_mass(tiny_instance, 4) == 2

    def test_empty(self):
        assert lower_bound_mass(Instance(tuple()), 3) == 0

    def test_bound_respected_by_exact(self, rng):
        for _ in range(8):
            inst = random_active_time_instance(5, 8, rng=rng)
            g = int(rng.integers(1, 4))
            try:
                exact = exact_active_time(inst, g)
            except RuntimeError:
                continue
            assert exact.cost >= lower_bound_mass(inst, g)
