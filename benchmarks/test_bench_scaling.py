"""E17 (engineering) — scaling study: runtime vs instance size.

Not a paper claim, but the repository's own performance envelope: every
algorithm's wall-clock growth on uniform random families, so regressions are
visible and users know what sizes are comfortable.  pytest-benchmark records
the distributions; the shape assertions only require successful completion
at the largest size.
"""

import pytest

from repro.activetime import minimal_feasible_schedule, round_active_time
from repro.busytime import (
    chain_peeling_two_approx,
    first_fit,
    greedy_tracking,
    greedy_unbounded_preemptive,
    kumar_rudra,
)
from repro.instances import (
    random_active_time_instance,
    random_flexible_instance,
    random_interval_instance,
)

INTERVAL_SIZES = [25, 100, 400]
ACTIVE_SIZES = [10, 25, 50]


@pytest.mark.parametrize("n", INTERVAL_SIZES)
@pytest.mark.parametrize(
    "algo",
    [first_fit, greedy_tracking, chain_peeling_two_approx, kumar_rudra],
    ids=lambda f: f.__name__,
)
def test_interval_algorithm_scaling(benchmark, rng, algo, n):
    inst = random_interval_instance(n, 1.5 * n, rng=rng)
    s = benchmark(algo, inst, 4)
    assert s.total_busy_time > 0


@pytest.mark.parametrize("n", ACTIVE_SIZES)
def test_rounding_scaling(benchmark, rng, n):
    inst = random_active_time_instance(n, n + 12, max_slack=6, rng=rng)
    try:
        sol = benchmark(round_active_time, inst, 3)
    except RuntimeError:
        pytest.skip("instance infeasible at g=3")
    assert sol.schedule.is_valid()


@pytest.mark.parametrize("n", ACTIVE_SIZES)
def test_minimal_feasible_scaling(benchmark, rng, n):
    inst = random_active_time_instance(n, n + 12, max_slack=6, rng=rng)
    try:
        s = benchmark(minimal_feasible_schedule, inst, 3)
    except ValueError:
        pytest.skip("instance infeasible at g=3")
    assert s.is_valid()


@pytest.mark.parametrize("n", [25, 100])
def test_preemptive_scaling(benchmark, rng, n):
    inst = random_flexible_instance(n, n + 10, rng=rng)
    s = benchmark(greedy_unbounded_preemptive, inst)
    assert s.is_valid()
