"""E18 (engineering) — batch-engine overhead and cache win.

Not a paper claim: measures what the orchestration layer itself costs.
Dispatch through the registry must stay within noise of a direct call,
and a fully-warm cache run must beat solving by a wide margin.
"""

import pytest

from repro.busytime import greedy_tracking
from repro.engine import (
    BatchRunner,
    ResultCache,
    build_sweep_tasks,
    default_grid,
    solve,
)
from repro.instances import random_interval_instance


def test_registry_dispatch_overhead(benchmark, rng):
    inst = random_interval_instance(100, 150.0, rng=rng)
    direct = greedy_tracking(inst, 4).total_busy_time
    outcome = benchmark(solve, "busy", "greedy_tracking", inst, 4)
    assert outcome.objective == pytest.approx(direct)


def test_serial_batch_throughput(benchmark):
    tasks = build_sweep_tasks([default_grid("busy")], limit=12)
    runner = BatchRunner(jobs=1)
    results = benchmark(runner.run, tasks)
    assert all(r.ok for r in results)


def test_warm_cache_run(benchmark, tmp_path):
    tasks = build_sweep_tasks([default_grid("busy")], limit=12)
    cache = ResultCache(directory=tmp_path)
    BatchRunner(jobs=1, cache=cache).run(tasks)  # warm it

    runner = BatchRunner(jobs=1, cache=cache)
    results = benchmark(runner.run, tasks)
    assert runner.last_cache_hits == len(tasks)
    assert all(r.cached for r in results)
