"""ASCII visualization of instances and schedules.

Terminal-friendly Gantt-style renderings used by the examples and handy in
notebooks and bug reports — no plotting dependency required.

* :func:`render_instance` — one row per job window (``.`` = slack);
* :func:`render_active_schedule` — slot occupancy matrix, ``#`` for full;
* :func:`render_busy_schedule` — one block per machine with job rows;
* :func:`render_demand_profile` — the Observation-4 staircase.
"""

from __future__ import annotations

from .activetime.schedule import ActiveTimeSchedule
from .busytime.demand_profile import DemandProfile
from .busytime.schedule import BusyTimeSchedule
from .core.jobs import Instance

__all__ = [
    "render_instance",
    "render_active_schedule",
    "render_busy_schedule",
    "render_demand_profile",
]

#: Total character budget for the time axis.
DEFAULT_WIDTH = 64


def _scale(lo: float, hi: float, width: int):
    """Return a position mapper ``time -> column`` for the given extent."""
    extent = max(hi - lo, 1e-9)

    def to_col(t: float) -> int:
        return int(round((t - lo) / extent * (width - 1)))

    return to_col


def render_instance(instance: Instance, *, width: int = DEFAULT_WIDTH) -> str:
    """Rows of ``====`` (length) inside ``....`` (window slack)."""
    if instance.n == 0:
        return "(empty instance)"
    lo = instance.earliest_release
    hi = instance.latest_deadline
    to_col = _scale(lo, hi, width)
    lines = [f"t: [{lo:g}, {hi:g})"]
    for job in instance.jobs:
        row = [" "] * width
        a, b = to_col(job.release), to_col(job.deadline)
        for c in range(a, max(a + 1, b)):
            row[c] = "."
        # draw the mandatory mass anchored at the release for flexible jobs
        fill_end = to_col(job.release + job.length)
        for c in range(a, max(a + 1, fill_end)):
            row[c] = "="
        label = f"j{job.id:<3}"
        lines.append(f"{label} |{''.join(row)}|")
    return "\n".join(lines)


def render_active_schedule(
    schedule: ActiveTimeSchedule, *, width: int = DEFAULT_WIDTH
) -> str:
    """Slots as columns; per slot the jobs scheduled there, ``#`` when full."""
    instance = schedule.instance
    if instance.n == 0:
        return "(empty schedule)"
    T = instance.horizon
    loads = schedule.slot_loads()
    header = "slot  " + "".join(
        f"{t:>3}" for t in range(1, T + 1)
    )
    onoff = "on?   " + "".join(
        "  #" if t in loads and loads[t] == schedule.g
        else ("  +" if t in set(schedule.active_slots) else "  .")
        for t in range(1, T + 1)
    )
    lines = [header, onoff]
    for job in instance.jobs:
        slots = set(schedule.assignment.get(job.id, ()))
        row = "".join(
            "  x" if t in slots else ("  ." if job.is_live_in_slot(t) else "   ")
            for t in range(1, T + 1)
        )
        lines.append(f"j{job.id:<4} {row}")
    lines.append(
        f"cost: {schedule.cost} active slots "
        f"(# = full, + = open, x = unit scheduled, . = window)"
    )
    return "\n".join(lines)


def render_busy_schedule(
    schedule: BusyTimeSchedule, *, width: int = DEFAULT_WIDTH
) -> str:
    """One section per machine; jobs as bars, busy periods marked below."""
    if not schedule.bundles:
        return "(no machines used)"
    lo = min(j.release for b in schedule.bundles for j in b.jobs)
    hi = max(j.deadline for b in schedule.bundles for j in b.jobs)
    to_col = _scale(lo, hi, width)
    lines = [f"t: [{lo:g}, {hi:g})"]
    for k, bundle in enumerate(schedule.bundles):
        lines.append(f"machine {k} (busy {bundle.busy_time:g}):")
        for job in sorted(bundle.jobs, key=lambda j: j.release):
            row = [" "] * width
            a, b = to_col(job.release), to_col(job.deadline)
            for c in range(a, max(a + 1, b)):
                row[c] = "="
            lines.append(f"  j{job.id:<3} |{''.join(row)}|")
        busy_row = [" "] * width
        for a, b in bundle.busy_intervals:
            for c in range(to_col(a), max(to_col(a) + 1, to_col(b))):
                busy_row[c] = "^"
        lines.append(f"  busy |{''.join(busy_row)}|")
    lines.append(f"total busy time: {schedule.total_busy_time:g}")
    return "\n".join(lines)


def render_demand_profile(
    profile: DemandProfile, *, width: int = DEFAULT_WIDTH
) -> str:
    """The staircase ``D(t)`` as stacked rows (top row = peak demand)."""
    if not profile.segments:
        return "(empty profile)"
    lo = profile.segments[0][0]
    hi = profile.segments[-1][1]
    to_col = _scale(lo, hi, width)
    peak = profile.max_demand
    lines = [f"t: [{lo:g}, {hi:g}), g={profile.g}, cost={profile.cost:g}"]
    for level in range(peak, 0, -1):
        row = [" "] * width
        for i, (a, b) in enumerate(profile.segments):
            if profile.demand(i) >= level:
                for c in range(to_col(a), max(to_col(a) + 1, to_col(b))):
                    row[c] = "█"
        lines.append(f"D>={level} |{''.join(row)}|")
    return "\n".join(lines)
