"""E9 — Theorem 10 / Figures 10-12: extending the 2-approx to flexible jobs
is exactly 4-approximate.

Paper claims: converting flexible jobs via the span-minimizing placement and
then running a 2x-profile interval algorithm gives 4-approximation (Lemma 7
x Theorem 8), and the Figure-10 family shows runs paying 1 + 4(g-1) + O(eps)
against OPT = g + O(eps) — ratio -> 4.  GREEDYTRACKING breaks this barrier
with its factor 3 (the paper's headline).
"""

import pytest

from repro.busytime import schedule_flexible
from repro.instances import figure10


@pytest.mark.parametrize("g", [2, 3, 4])
def test_fig10_pipeline_comparison(g, emit):
    gad = figure10(g)
    opt_claim = gad.facts["opt_busy_time"]
    adv_claim = gad.facts["adversarial_cost"]

    rows = [["paper OPT (claim)", opt_claim, 1.0]]
    results = {}
    for name in ("chain_peeling", "kumar_rudra", "greedy_tracking"):
        s = schedule_flexible(
            gad.instance, g,
            starts=gad.witness["adversarial_starts"], algorithm=name,
        )
        s.verify()
        results[name] = s.total_busy_time
        rows.append(
            [f"{name} on adversarial placement", s.total_busy_time,
             s.total_busy_time / opt_claim]
        )
    rows.append(
        ["paper adversarial run (1+4(g-1))", adv_claim, adv_claim / opt_claim]
    )
    emit(
        f"E9 / Figure 10 — flexible 4-approx tightness, g={g}",
        ["pipeline", "busy time", "ratio vs OPT claim"],
        rows,
    )

    # Shape claims: every 2x-profile algorithm stays within the proven factor
    # 4, GREEDYTRACKING within 3; the paper's adversarial run cost dominates
    # the optimum and its ratio grows with g.
    assert results["chain_peeling"] <= 4 * opt_claim + 1e-6
    assert results["kumar_rudra"] <= 4 * opt_claim + 1e-6
    assert results["greedy_tracking"] <= 3 * opt_claim + 1e-6
    assert adv_claim / opt_claim <= 4.0


def test_paper_adversarial_ratio_grows_to_4():
    ratios = []
    for g in (2, 4, 8, 16):
        gad = figure10(g, eps=0.01, eps_prime=0.005)
        ratios.append(gad.facts["adversarial_cost"] / gad.facts["opt_busy_time"])
    assert ratios == sorted(ratios)
    assert ratios[-1] > 3.5


@pytest.mark.parametrize("g", [3])
def test_fig10_pipeline_runtime(benchmark, g):
    gad = figure10(g)
    s = benchmark(
        schedule_flexible,
        gad.instance,
        g,
        starts=gad.witness["adversarial_starts"],
        algorithm="chain_peeling",
    )
    assert s.is_valid()
