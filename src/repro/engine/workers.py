"""Worker-side task execution for the batch engine.

Tasks carry names, not callables: the worker process re-resolves the
solver through :data:`repro.engine.registry.REGISTRY`, so nothing
unpicklable crosses the process boundary and spawned interpreters work
exactly like forked ones.

Per-task timeouts have two enforcement layers:

* ``SIGALRM`` (POSIX) inside the worker — cheap, but a signal only
  interrupts Python bytecode, so a solver deep inside a native call
  (e.g. the scipy/HiGHS MILP backend) overruns its budget until the
  interpreter regains control;
* the **parent-side watchdog** in :class:`~repro.engine.runner.BatchRunner`
  — workers run :func:`worker_loop` over a pipe, the parent tracks each
  task's deadline, and a worker that overruns (stuck in native code, or
  dead) is terminated and replaced, with a ``timeout`` result recorded
  for its task.

Every error is captured into the result record — annotated with the
task's content digest and seed so a failing instance can be regenerated
— instead of tearing down the pool.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..core.jobs import Instance
from ..obs import TaskTrace
from ..solvers.registry import capture_solves
from .cache import task_digest
from .registry import REGISTRY

__all__ = [
    "Task",
    "TaskResult",
    "TaskTimeout",
    "execute_task",
    "failure_result",
    "make_task",
    "worker_loop",
]


class TaskTimeout(Exception):
    """Raised inside a worker when a task exceeds its time budget."""


@dataclass(frozen=True)
class Task:
    """One solve request: an instance plus the solver coordinates.

    ``meta`` is free-form provenance (generator name, seed, source file)
    that is carried into the result record; it does not affect the
    content digest.
    """

    index: int
    problem: str
    algorithm: str
    g: int
    instance: Instance
    digest: str
    params: dict[str, Any] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)
    timeout: float | None = None

    @property
    def seed(self) -> Any:
        """The generator seed, if the task records one (for error context)."""
        return self.meta.get("seed", self.params.get("seed"))

    @property
    def structure_group(self) -> str | None:
        """Label of this task's model-structure family, if assigned.

        Sweep expansion tags tasks whose solves build (near-)identical
        LP/MILP structures (same generator family, size and algorithm);
        the runner keeps a group sticky to one worker process so a
        resolve-capable backend's resident-model cache actually hits
        across the chain.  ``None`` means no affinity preference.
        """
        group = self.meta.get("structure_group")
        return group if isinstance(group, str) else None


def make_task(
    index: int,
    problem: str,
    algorithm: str,
    g: int,
    instance: Instance,
    *,
    params: dict[str, Any] | None = None,
    meta: dict[str, Any] | None = None,
    timeout: float | None = None,
) -> Task:
    """Build a :class:`Task`, computing its content digest."""
    params = dict(params or {})
    return Task(
        index=index,
        problem=problem,
        algorithm=algorithm,
        g=g,
        instance=instance,
        digest=task_digest(instance, problem, algorithm, g, params),
        params=params,
        meta=dict(meta or {}),
        timeout=timeout,
    )


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one task: metrics on success, an error string otherwise."""

    index: int
    digest: str
    problem: str
    algorithm: str
    g: int
    n: int
    ok: bool
    objective: float | None = None
    metrics: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    elapsed: float = 0.0
    cached: bool = False
    meta: dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> dict[str, Any]:
        """JSON-serializable form (for JSONL files and the cache)."""
        return {
            "index": self.index,
            "digest": self.digest,
            "problem": self.problem,
            "algorithm": self.algorithm,
            "g": self.g,
            "n": self.n,
            "ok": self.ok,
            "objective": self.objective,
            "metrics": self.metrics,
            "error": self.error,
            "elapsed": round(self.elapsed, 6),
            "cached": self.cached,
            "meta": self.meta,
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "TaskResult":
        """Inverse of :meth:`to_record` (unknown keys are ignored)."""
        return cls(
            index=record["index"],
            digest=record["digest"],
            problem=record["problem"],
            algorithm=record["algorithm"],
            g=record["g"],
            n=record.get("n", 0),
            ok=record["ok"],
            objective=record.get("objective"),
            metrics=dict(record.get("metrics") or {}),
            error=record.get("error"),
            elapsed=float(record.get("elapsed", 0.0)),
            cached=bool(record.get("cached", False)),
            meta=dict(record.get("meta") or {}),
        )


@contextmanager
def _alarm(seconds: float | None) -> Iterator[None]:
    """Arm ``SIGALRM`` for ``seconds`` (no-op without support or budget)."""
    if not seconds or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _raise(signum, frame):  # pragma: no cover - exercised via timeout
        raise TaskTimeout(f"timed out after {seconds:g}s")

    previous = signal.signal(signal.SIGALRM, _raise)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _error_context(task: Task) -> str:
    """Identify the failing task well enough to reproduce it."""
    seed = task.seed
    seed_part = f" seed={seed}" if seed is not None else ""
    return (
        f"task {task.digest[:12]} "
        f"({task.problem}/{task.algorithm}, g={task.g}, "
        f"n={task.instance.n}{seed_part})"
    )


def failure_result(
    task: Task,
    error: str,
    elapsed: float,
    *,
    trace: TaskTrace | None = None,
) -> TaskResult:
    """A failed :class:`TaskResult` for ``task`` with full error context.

    Used by the worker for in-process failures and by the parent-side
    watchdog for tasks whose worker had to be killed.  ``trace`` — when
    the caller has one — rides home in ``metrics["trace"]`` so failed
    tasks explain where their time went too.
    """
    metrics: dict[str, Any] = {}
    if trace is not None:
        metrics["trace"] = trace.to_payload()
    return TaskResult(
        index=task.index,
        digest=task.digest,
        problem=task.problem,
        algorithm=task.algorithm,
        g=task.g,
        n=task.instance.n,
        ok=False,
        metrics=metrics,
        error=f"{_error_context(task)}: {error}",
        elapsed=elapsed,
        meta=task.meta,
    )


def worker_loop(conn) -> None:
    """Child-process main for the watchdog pool: serve tasks over a pipe.

    Receives :class:`Task` objects, answers each with a
    :class:`TaskResult`; a ``None`` message (or a closed pipe) shuts the
    worker down.  Must stay importable at module top level so spawned
    interpreters can resolve it.

    Workers are long-lived (the runner keeps them across batches), so a
    parent that dies without running its close path must not strand
    them: sibling processes forked later inherit this pipe's write end,
    which keeps ``recv`` from ever seeing EOF — hence the explicit
    orphan check (``getppid`` flips to the reaper once the parent is
    gone) on every poll interval.
    """
    parent = os.getppid()
    while True:
        try:
            if not conn.poll(1.0):
                if os.getppid() != parent:
                    return  # orphaned: parent died without cleanup
                continue
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        try:
            conn.send(execute_task(task))
        except (BrokenPipeError, OSError):  # parent went away
            return


def execute_task(task: Task) -> TaskResult:
    """Run one task, capturing any failure into the result.

    This is the function shipped to worker processes; it must stay
    importable at module top level so it pickles by reference.
    ``KeyboardInterrupt`` is deliberately *not* captured — it must
    propagate so pool shutdown works.
    """
    trace = TaskTrace(
        algorithm=task.algorithm,
        problem=task.problem,
        structure_group=task.structure_group,
    )
    start = time.perf_counter()
    try:
        with _alarm(task.timeout), capture_solves() as solves:
            with trace.span("solving"):
                outcome = REGISTRY.solve(
                    task.problem,
                    task.algorithm,
                    task.instance,
                    task.g,
                    **task.params,
                )
    except KeyboardInterrupt:
        raise
    except TaskTimeout as exc:
        trace.label(status="timeout")
        return failure_result(
            task, str(exc), time.perf_counter() - start, trace=trace
        )
    except Exception as exc:
        detail = traceback.format_exception_only(type(exc), exc)[-1].strip()
        trace.label(status="error")
        return failure_result(
            task, detail, time.perf_counter() - start, trace=trace
        )
    metrics = dict(outcome.metrics)
    metrics.update(_solve_facts(solves))
    trace.label(status="ok", **{
        k: metrics[k]
        for k in ("backend", "warm_start_used", "structure_hit")
        if k in metrics
    })
    metrics["trace"] = trace.to_payload()
    return TaskResult(
        index=task.index,
        digest=task.digest,
        problem=task.problem,
        algorithm=task.algorithm,
        g=task.g,
        n=task.instance.n,
        ok=True,
        objective=outcome.objective,
        metrics=metrics,
        elapsed=time.perf_counter() - start,
        meta=task.meta,
    )


def _solve_facts(solves: list[dict[str, Any]]) -> dict[str, Any]:
    """Fold the captured backend-solve events into result metrics.

    An algorithm may issue several backend solves per task (e.g. an LP
    relaxation then a MILP); the task counts as warm/structure-hit if
    *any* of them were, and the backend label is the last one used.
    """
    if not solves:
        return {}
    return {
        "backend": solves[-1]["backend"],
        "warm_start_used": any(e["warm_start_used"] for e in solves),
        "structure_hit": any(e["structure_hit"] for e in solves),
    }
