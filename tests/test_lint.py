"""Tests for ``repro.lint`` — the project static-analysis framework.

Each rule gets a positive (violating), negative (clean) and waived
fixture; the framework itself is pinned by waiver-parsing, ``--json``
schema and exit-code tests.  Two tests run against the *real* tree: the
self-lint (the framework must keep the repo clean, waivers included)
and README↔registry metrics-catalog parity (REP004 in both directions).
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import RULES, lint_paths
from repro.lint.cli import main as lint_main
from repro.lint.waivers import parse_waivers

ROOT = Path(__file__).resolve().parents[1]


def _write(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _rules_hit(report):
    return {f.rule for f in report.findings}


def _lint_dir(tmp_path, **kwargs):
    kwargs.setdefault("root", tmp_path)
    return lint_paths([tmp_path], **kwargs)


# ----------------------------------------------------------------------
# Rule fixtures: positive / negative / waived
# ----------------------------------------------------------------------

class TestREP001AsyncBlocking:
    def test_blocking_calls_in_coroutine_flagged(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            import time

            async def handler():
                time.sleep(1)
                open("x")
        """)
        report = _lint_dir(tmp_path, rule_ids=["REP001"])
        assert len(report.findings) == 2
        assert _rules_hit(report) == {"REP001"}
        assert report.findings[0].line == 4

    def test_async_sleep_and_sync_helpers_pass(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            import asyncio
            import time

            async def handler():
                await asyncio.sleep(1)

                def executor_target():
                    time.sleep(1)  # sync helper: allowed to block
                return executor_target

            def plain():
                time.sleep(1)
        """)
        assert _lint_dir(tmp_path, rule_ids=["REP001"]).ok

    def test_legacy_blocking_ok_waiver_still_works(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            import time

            async def handler():
                time.sleep(0)  # blocking-ok yields the GIL; never blocks
        """)
        report = _lint_dir(tmp_path, rule_ids=["REP001"])
        assert report.ok
        assert len(report.waived) == 1
        assert report.waived[0].rule == "REP001"

    def test_banned_server_imports_only_in_serve_package(self, tmp_path):
        source = "import socketserver\n"
        _write(tmp_path, "src/repro/serve/bad.py", source)
        _write(tmp_path, "src/repro/other/fine.py", source)
        report = _lint_dir(tmp_path, rule_ids=["REP001"])
        assert [f.path for f in report.findings] == [
            "src/repro/serve/bad.py"
        ]


class TestREP002BroadExcept:
    def test_broad_except_in_coroutine_flagged(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            async def fetch():
                try:
                    await step()
                except Exception:
                    return None
        """)
        report = _lint_dir(tmp_path, rule_ids=["REP002"])
        assert _rules_hit(report) == {"REP002"}
        assert "CancelledError" in report.findings[0].message

    def test_cancelled_sibling_reraise_accepted(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            import asyncio

            async def fetch():
                try:
                    await step()
                except asyncio.CancelledError:
                    raise
                except Exception:
                    return None
        """)
        assert _lint_dir(tmp_path, rule_ids=["REP002"]).ok

    def test_swallowed_cancellederror_is_the_violation(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            import asyncio

            async def fetch():
                try:
                    await step()
                except asyncio.CancelledError:
                    return None
        """)
        report = _lint_dir(tmp_path, rule_ids=["REP002"])
        assert not report.ok
        assert "without re-raise" in report.findings[0].message

    def test_worker_path_wants_keyboardinterrupt(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            import threading

            def boot():
                threading.Thread(target=work).start()

            def work():
                try:
                    step()
                except Exception:
                    pass

            def not_a_worker():
                try:
                    step()
                except Exception:
                    pass
        """)
        report = _lint_dir(tmp_path, rule_ids=["REP002"])
        assert len(report.findings) == 1
        assert report.findings[0].line == 9
        assert "KeyboardInterrupt" in report.findings[0].message

    def test_worker_reraise_patterns_accepted(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            import threading

            def boot():
                threading.Thread(target=work).start()

            def work():
                try:
                    step()
                except KeyboardInterrupt:
                    raise
                except Exception:
                    pass
        """)
        assert _lint_dir(tmp_path, rule_ids=["REP002"]).ok

    def test_waived_with_reason(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            async def teardown():
                try:
                    await close()
                except Exception:  # lint: waive[REP002] best-effort close
                    pass
        """)
        report = _lint_dir(tmp_path, rule_ids=["REP002"])
        assert report.ok
        assert len(report.waived) == 1


class TestREP003LockDiscipline:
    def test_lock_free_read_of_guarded_field_flagged(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1

                def peek(self):
                    return self.count
        """)
        report = _lint_dir(tmp_path, rule_ids=["REP003"])
        assert len(report.findings) == 1
        assert "peek" in report.findings[0].message
        assert "count" in report.findings[0].message

    def test_guarded_read_and_dunders_pass(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1

                def peek(self):
                    with self._lock:
                        return self.count

                def __repr__(self):
                    return f"Counter({self.count})"
        """)
        assert _lint_dir(tmp_path, rule_ids=["REP003"]).ok

    def test_manual_acquire_flagged(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()

                def bad(self):
                    self._lock.acquire()
                    try:
                        pass
                    finally:
                        self._lock.release()
        """)
        report = _lint_dir(tmp_path, rule_ids=["REP003"])
        assert len(report.findings) == 2  # acquire + release
        assert "with" in report.findings[0].message

    def test_deliberately_racy_read_waived(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1

                def peek(self):
                    return self.count  # lint: waive[REP003] monotonic counter; torn reads acceptable for reporting
        """)
        report = _lint_dir(tmp_path, rule_ids=["REP003"])
        assert report.ok
        assert len(report.waived) == 1


class TestREP004MetricsHygiene:
    def test_bad_name_duplicate_and_catalog_drift(self, tmp_path):
        _write(tmp_path, "README.md", """\
            Metrics catalog (all names prefixed `repro_`):

            | metric        | type    |
            |---------------|---------|
            | `good_total`  | counter |
            | `ghost_total` | counter |

            # next section
        """)
        _write(tmp_path, "src/repro/obs/metrics.py", """\
            OBS = object()
        """)
        _write(tmp_path, "mod.py", """\
            from repro.obs import REGISTRY as OBS

            A = OBS.counter("repro_good_total", "cataloged")
            B = OBS.counter("myapp_bad_total", "wrong prefix")
            C = OBS.counter("repro_good_total", "duplicate")
            D = OBS.counter("repro_undocumented_total", "not in catalog")
        """)
        report = _lint_dir(tmp_path, rule_ids=["REP004"])
        messages = "\n".join(f.message for f in report.findings)
        assert "myapp_bad_total" in messages          # naming
        assert "already registered" in messages       # uniqueness
        assert "repro_undocumented_total" in messages  # code → catalog
        assert "repro_ghost_total" in messages         # catalog → code
        ghost = [f for f in report.findings if "ghost" in f.message]
        assert ghost[0].path == "README.md"

    def test_computed_name_flagged(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            from repro.obs import REGISTRY as OBS

            NAME = "repro_dynamic_total"
            A = OBS.counter(NAME, "computed names cannot be audited")
        """)
        report = _lint_dir(tmp_path, rule_ids=["REP004"])
        assert "string literal" in report.findings[0].message

    def test_clean_registrations_pass_without_readme(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            from repro.obs import REGISTRY as OBS

            A = OBS.counter("repro_things_total", "fine")
            B = OBS.gauge("repro_depth", "fine")
        """)
        assert _lint_dir(tmp_path, rule_ids=["REP004"]).ok


class TestREP005ForkSafety:
    def test_lambda_lock_and_closure_to_process_pool_flagged(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            import threading
            from concurrent.futures import ProcessPoolExecutor

            guard = threading.Lock()

            def go():
                pool = ProcessPoolExecutor()
                pool.submit(lambda: 1)
                pool.submit(work, guard)

                def closure():
                    return 1
                pool.submit(closure)

            def work(lock):
                pass
        """)
        report = _lint_dir(tmp_path, rule_ids=["REP005"])
        messages = "\n".join(f.message for f in report.findings)
        assert "lambda" in messages
        assert "lock" in messages
        assert "closure" in messages
        assert len(report.findings) == 3

    def test_process_target_lambda_flagged(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            import multiprocessing

            def go():
                ctx = multiprocessing.get_context("fork")
                proc = ctx.Process(target=lambda: 1)
                proc.start()
        """)
        report = _lint_dir(tmp_path, rule_ids=["REP005"])
        assert len(report.findings) == 1
        assert "lambda" in report.findings[0].message

    def test_module_level_functions_and_thread_pools_pass(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            from concurrent.futures import ProcessPoolExecutor
            from concurrent.futures import ThreadPoolExecutor

            def work(n):
                return n

            def go():
                pool = ProcessPoolExecutor()
                pool.submit(work, 3)
                threads = ThreadPoolExecutor()
                threads.submit(lambda: 1)  # threads never pickle
        """)
        assert _lint_dir(tmp_path, rule_ids=["REP005"]).ok


class TestREP006DigestDeterminism:
    def test_clock_in_digest_path_flagged(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            import hashlib
            import time

            def task_digest(task):
                return hashlib.sha256(str(_salt()).encode()).hexdigest()

            def _salt():
                return time.time()
        """)
        report = _lint_dir(tmp_path, rule_ids=["REP006"])
        assert len(report.findings) == 1
        assert "time.time()" in report.findings[0].message
        assert "_salt" in report.findings[0].message

    def test_unsorted_dict_iteration_flagged_sorted_passes(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            def task_digest(params):
                bad = [k for k, v in params.items()]
                good = [k for k, v in sorted(params.items())]
                return bad + good
        """)
        report = _lint_dir(tmp_path, rule_ids=["REP006"])
        assert len(report.findings) == 1
        assert "sorted" in report.findings[0].message

    def test_unreachable_nondeterminism_is_fine(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            import json
            import time

            def task_digest(task):
                return json.dumps(task, sort_keys=True)

            def jitter():
                return time.time()
        """)
        assert _lint_dir(tmp_path, rule_ids=["REP006"]).ok


# ----------------------------------------------------------------------
# Waiver parsing and REP000 hygiene
# ----------------------------------------------------------------------

class TestWaivers:
    def test_parse_ids_and_reason(self):
        waivers = parse_waivers(
            ["x = 1  # lint: waive[REP002,REP005] crosses no boundary"]
        )
        waiver = waivers[1]
        assert waiver.ids == frozenset({"REP002", "REP005"})
        assert waiver.reason == "crosses no boundary"
        assert not waiver.legacy
        assert not waiver.malformed
        assert waiver.covers("REP005") and not waiver.covers("REP001")

    def test_legacy_blocking_ok_means_rep001(self):
        waivers = parse_waivers(["time.sleep(0)  # blocking-ok warms cache"])
        waiver = waivers[1]
        assert waiver.ids == frozenset({"REP001"})
        assert waiver.legacy
        assert waiver.reason == "warms cache"

    def test_malformed_ids_recorded(self):
        waivers = parse_waivers(["x  # lint: waive[REP1,nope] why"])
        assert waivers[1].malformed == ["REP1", "nope"]
        assert waivers[1].ids == frozenset()

    def test_missing_reason_is_rep000(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            import time

            async def handler():
                time.sleep(1)  # lint: waive[REP001]
        """)
        report = _lint_dir(tmp_path)
        assert _rules_hit(report) == {"REP000"}
        assert "no reason" in report.findings[0].message
        # the violation itself is still waived — but the naked waiver
        # is a finding, so the file cannot pass as-is
        assert [w.rule for w in report.waived] == ["REP001"]

    def test_rep000_cannot_be_waived(self, tmp_path):
        _write(tmp_path, "mod.py", """\
            x = 1  # lint: waive[REP000,REP001]
        """)
        report = _lint_dir(tmp_path)
        assert not report.ok
        assert all(f.rule == "REP000" for f in report.findings)

    def test_unparsable_module_is_rep000(self, tmp_path):
        _write(tmp_path, "mod.py", "def broken(:\n")
        report = _lint_dir(tmp_path)
        assert not report.ok
        assert report.findings[0].rule == "REP000"
        assert "cannot parse" in report.findings[0].message


# ----------------------------------------------------------------------
# CLI surface: exit codes, --json schema, rule selection
# ----------------------------------------------------------------------

class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean"
        clean.mkdir()
        _write(clean, "ok.py", "x = 1\n")
        assert lint_main([str(clean), "--root", str(clean)]) == 0

        dirty = tmp_path / "dirty"
        _write(dirty, "bad.py", """\
            import time

            async def handler():
                time.sleep(1)
        """)
        assert lint_main([str(dirty), "--root", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:4: REP001" in out

        assert lint_main(["--rules", "REP999", str(clean)]) == 2
        assert lint_main([str(tmp_path / "missing")]) == 2

    def test_json_schema(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", """\
            import time

            async def handler():
                time.sleep(0)
                time.sleep(1)  # blocking-ok measured; sub-ms on this path
        """)
        code = lint_main([str(tmp_path), "--json", "--root", str(tmp_path)])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["ok"] is False
        assert payload["files_scanned"] == 1
        assert payload["rules_run"] == sorted(RULES)
        finding = payload["findings"][0]
        assert set(finding) == {"path", "line", "rule", "message"}
        assert finding["rule"] == "REP001"
        assert finding["line"] == 4
        assert payload["waived"][0]["line"] == 5

    def test_list_rules_documents_every_rule(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005",
                        "REP006"):
            assert rule_id in out

    def test_rule_selection_runs_only_selected(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", """\
            import time

            async def handler():
                try:
                    time.sleep(1)
                except Exception:
                    pass
        """)
        assert lint_main(
            [str(tmp_path), "--rules", "REP002", "--root", str(tmp_path)]
        ) == 1
        out = capsys.readouterr().out
        assert "REP002" in out and "REP001" not in out


#: One seeded violation per rule; any of these must fail the CI gate.
_SEEDED = {
    "REP001": "import time\n\nasync def h():\n    time.sleep(1)\n",
    "REP002": ("async def h():\n    try:\n        await s()\n"
               "    except Exception:\n        pass\n"),
    "REP003": ("import threading\n\n\nclass C:\n"
               "    def __init__(self):\n"
               "        self._lock = threading.Lock()\n\n"
               "    def bad(self):\n        self._lock.acquire()\n"),
    "REP004": ("from repro.obs import REGISTRY as OBS\n\n"
               "A = OBS.counter('wrong_prefix_total', 'x')\n"),
    "REP005": ("from concurrent.futures import ProcessPoolExecutor\n\n"
               "def go():\n    pool = ProcessPoolExecutor()\n"
               "    pool.submit(lambda: 1)\n"),
    "REP006": ("import time\n\n\ndef task_digest(t):\n"
               "    return time.time()\n"),
}


@pytest.mark.parametrize("rule_id", sorted(_SEEDED))
def test_seeded_violation_fails_the_gate(rule_id, tmp_path, capsys):
    """Acceptance: one violation per rule must turn the CLI red."""
    _write(tmp_path, "seeded.py", _SEEDED[rule_id])
    assert lint_main([str(tmp_path), "--root", str(tmp_path)]) == 1
    assert rule_id in capsys.readouterr().out


# ----------------------------------------------------------------------
# The real tree: self-lint and metrics-catalog parity
# ----------------------------------------------------------------------

class TestRealTree:
    def test_framework_keeps_the_tree_clean(self):
        """`repro lint src tools benchmarks` — the CI gate — is green,
        and every waiver in the tree carries a reason (REP000 would
        fire otherwise)."""
        report = lint_paths(
            [ROOT / "src", ROOT / "tools", ROOT / "benchmarks"],
            root=ROOT,
        )
        assert report.ok, "\n".join(f.format() for f in report.findings)
        assert report.files_scanned > 100

    def test_metrics_catalog_parity_both_directions(self):
        """Every OBS registration is cataloged in the README and every
        catalog row is registered (the catalog is the wire contract)."""
        report = lint_paths(
            [ROOT / "src"], rule_ids=["REP004"], root=ROOT
        )
        assert report.ok, "\n".join(f.format() for f in report.findings)

    def test_self_lint_covers_the_lint_package(self):
        report = lint_paths(
            [ROOT / "src" / "repro" / "lint"], root=ROOT
        )
        assert report.ok, "\n".join(f.format() for f in report.findings)
        assert report.files_scanned >= 12
