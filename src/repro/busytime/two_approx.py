"""The 2-approximation for interval jobs (Theorem 3) via chain peeling.

Appendix A shows that the wavelength-assignment algorithms of Kumar–Rudra and
Alicherry–Bhatia charge the **demand profile** at most twice.  This module
implements that charging scheme directly, as *chain peeling*:

A **chain** is a sequence of jobs ``j_1, j_2, ...`` picked by the classic
interval-covering greedy over the residual demand region ``R`` (segments with
at least one remaining job): at the leftmost uncovered demanded point ``x``,
pick the job covering ``x`` with the latest deadline.  Two standard facts
follow from the max-deadline choice (proved inline, asserted in tests):

* non-consecutive chain jobs are disjoint, so at most 2 chain jobs overlap
  anywhere and the chain's odd/even subsequences are *tracks*;
* the chain covers all of ``R``, so removing it lowers the raw demand by at
  least 1 on every demanded segment.

Each **round** extracts ``g`` chains and opens two bundles: one takes every
chain's odd-indexed jobs (``g`` tracks), the other the even-indexed jobs.
After round ``k`` the residual raw demand is at most ``max(0, |A(t)| - kg)``,
hence round ``k``'s region is contained in ``{t : D(t) >= k}`` and

    cost  <=  sum_k 2 * Sp({t : D(t) >= k})  =  2 * profile  <=  2 * OPT.

No dummy-job padding is needed — the covering greedy works directly on the
residual demand.  This matches the guarantee (and the Figure-8 tightness) of
the algorithms the paper cites, with machinery that is checkable at runtime.
"""

from __future__ import annotations

from ..core.intervals import merge_intervals
from ..core.jobs import TIME_EPS, Instance, Job
from ..core.validation import require_capacity, require_interval_jobs
from .demand_profile import compute_demand_profile
from .schedule import BusyTimeSchedule

__all__ = ["chain_peeling_two_approx", "extract_chain"]


def _demanded_region(jobs: list[Job]) -> list[tuple[float, float]]:
    """Union of the residual jobs' windows — where residual demand >= 1."""
    return merge_intervals(j.window for j in jobs)


def extract_chain(jobs: list[Job]) -> list[Job]:
    """Greedy max-deadline cover of the jobs' own demand region.

    Returns the chain in pick order; at most two chain jobs overlap at any
    point and the chain covers every point covered by ``jobs``.
    """
    if not jobs:
        return []
    region = _demanded_region(jobs)
    pool = list(jobs)
    chain: list[Job] = []
    cur_end = -float("inf")
    for a, b in region:
        x = max(a, cur_end)
        while x < b - TIME_EPS:
            # candidates covering the point x (half-open windows)
            candidates = [
                j
                for j in pool
                if j.release <= x + TIME_EPS and j.deadline > x + TIME_EPS
            ]
            if not candidates:  # pragma: no cover - region built from pool
                raise RuntimeError(
                    f"no residual job covers demanded point {x}"
                )
            pick = max(candidates, key=lambda j: (j.deadline, -j.release, j.id))
            chain.append(pick)
            pool.remove(pick)
            cur_end = pick.deadline
            x = max(x, cur_end)
    return chain


def chain_peeling_two_approx(instance: Instance, g: int) -> BusyTimeSchedule:
    """Theorem-3 2-approximation for interval jobs via chain peeling.

    The returned schedule's total busy time is at most twice the demand
    profile lower bound, hence at most ``2 * OPT`` (Observation 4); the
    certificate is re-checked before returning.
    """
    require_interval_jobs(instance, "chain peeling")
    require_capacity(g)
    residual: list[Job] = list(instance.jobs)
    groups: list[list[Job]] = []

    while residual:
        odd_bundle: list[Job] = []
        even_bundle: list[Job] = []
        for _ in range(g):
            if not residual:
                break
            chain = extract_chain(residual)
            taken = {j.id for j in chain}
            residual = [j for j in residual if j.id not in taken]
            odd_bundle.extend(chain[0::2])
            even_bundle.extend(chain[1::2])
        if odd_bundle:
            groups.append(odd_bundle)
        if even_bundle:
            groups.append(even_bundle)

    schedule = BusyTimeSchedule.from_bundle_jobs(instance, g, groups)
    certificate = 2.0 * compute_demand_profile(instance, g).cost
    if schedule.total_busy_time > certificate + 1e-6:
        raise RuntimeError(
            "chain peeling exceeded its 2x demand-profile certificate: "
            f"{schedule.total_busy_time} > {certificate}"
        )
    return schedule
