"""FIRSTFIT — the 4-approximate baseline of Flammini et al. [5].

Jobs are considered in non-increasing order of length; each is packed into the
first (lowest-index) bundle where adding it keeps at most ``g`` jobs running
simultaneously, opening a new bundle when none fits.  Flammini et al. prove a
worst-case ratio of 4 and exhibit instances where FIRSTFIT pays 3x the
optimum; GREEDYTRACKING (Theorem 5) improves the guarantee to 3.

Two extra orderings are exposed because the paper's footnote 1 discusses
them: ``"release"`` (greedy by release time — 2-approximate on *proper*
instances) and ``"input"``.
"""

from __future__ import annotations

from typing import Literal, Sequence

from ..core.intervals import coverage_counts
from ..core.jobs import Job, Instance
from ..core.validation import require_capacity, require_interval_jobs
from .schedule import Bundle, BusyTimeSchedule

__all__ = ["first_fit", "fits_in_bundle", "FirstFitOrder"]

FirstFitOrder = Literal["length", "release", "input"]


def fits_in_bundle(members: Sequence[Job], job: Job, g: int) -> bool:
    """Can ``job`` join ``members`` without exceeding ``g`` simultaneous jobs?

    Only the coverage inside ``job``'s own interval matters; we count the
    members overlapping it and check the peak is below ``g``.
    """
    window = job.window
    overlapping = [
        m.window
        for m in members
        if m.release < window[1] and m.deadline > window[0]
    ]
    if len(overlapping) < g:
        return True
    # Peak coverage of existing members restricted to job's interval.
    clipped = [
        (max(a, window[0]), min(b, window[1])) for a, b in overlapping
    ]
    peak = max((c for _, c in coverage_counts(clipped)), default=0)
    return peak < g


def first_fit(
    instance: Instance, g: int, *, order: FirstFitOrder = "length"
) -> BusyTimeSchedule:
    """Run FIRSTFIT on an interval instance.

    Parameters
    ----------
    order:
        ``"length"`` — the algorithm of Flammini et al. (non-increasing
        length, the 4-approximation); ``"release"`` — greedy by release time
        (2-approximate on proper instances); ``"input"`` — instance order
        (no guarantee; useful as an ablation).
    """
    require_interval_jobs(instance, "FIRSTFIT")
    require_capacity(g)

    if order == "length":
        ordered = sorted(
            instance.jobs, key=lambda j: (-j.length, j.release, j.id)
        )
    elif order == "release":
        ordered = sorted(
            instance.jobs, key=lambda j: (j.release, -j.length, j.id)
        )
    elif order == "input":
        ordered = list(instance.jobs)
    else:
        raise ValueError(f"unknown FIRSTFIT order {order!r}")

    bundles: list[list[Job]] = []
    for job in ordered:
        for members in bundles:
            if fits_in_bundle(members, job, g):
                members.append(job)
                break
        else:
            bundles.append([job])

    return BusyTimeSchedule.from_bundle_jobs(instance, g, bundles)
