"""Kumar–Rudra-style level assignment with parity splitting (Appendix A.1).

Kumar and Rudra's fiber-minimization algorithm assigns jobs to *levels* within
the demand profile — level ``l`` only exists over ``{t : |A(t)| >= l}`` — with
at most two mutually overlapping jobs per level, then resolves each group of
``g`` levels onto **two** machines, separating same-level overlaps by a
2-coloring (their "parity based assignment").  The cost is then at most

    sum_k 2 * Sp({t : |A(t)| >= (k-1)g + 1})  =  2 * profile.

This module implements that scheme with a greedy level chooser (process jobs
by release time; take the lowest admissible level).  When the greedy cannot
honour the level-region constraint it falls back to the lowest level with a
free overlap slot, which can in principle exceed the region — the returned
schedule therefore carries a runtime certificate check against the rigorous
bound ``2 * profile``, and :func:`repro.busytime.two_approx.chain_peeling_two_approx`
provides the variant whose guarantee holds unconditionally by construction.
Dummy-job padding (Appendix A.1) is applied first so the raw demand is a
multiple of ``g`` everywhere, exactly as the paper prescribes.

Per-level overlap graphs are triangle-free interval graphs (at most 2 jobs
overlap pointwise), hence chordal and triangle-free — i.e. forests — so the
2-coloring always exists.
"""

from __future__ import annotations

from collections import deque

from ..core.jobs import TIME_EPS, Instance, Job
from ..core.validation import require_capacity, require_interval_jobs
from .demand_profile import (
    DUMMY_LABEL,
    compute_demand_profile,
    pad_to_multiple_of_g,
)
from .schedule import BusyTimeSchedule

__all__ = ["kumar_rudra", "assign_levels", "two_color_level"]


def assign_levels(padded: Instance, g: int) -> dict[int, int]:
    """Assign each padded job to a level (1-based), <= 2 overlapping per level.

    Jobs are processed by release time; each takes the lowest level that
    (a) lies inside the demand region along the whole job (level <= min raw
    demand over the job's span) and (b) currently has at most one assigned
    job live at the release time.  Because every previously assigned job
    overlapping the newcomer is live at its release, (b) caps the pointwise
    overlap per level at two globally.  If no level satisfies both, (a) is
    dropped (certificate still checked downstream).
    """
    profile = compute_demand_profile(padded, 1)  # raw demand per segment
    segments = profile.segments
    raw = profile.raw

    def min_demand_over(job: Job) -> int:
        vals = [
            raw[i]
            for i, (a, b) in enumerate(segments)
            if a < job.deadline - TIME_EPS and b > job.release + TIME_EPS
        ]
        return min(vals) if vals else 0

    ordered = sorted(padded.jobs, key=lambda j: (j.release, -j.length, j.id))
    level_of: dict[int, int] = {}
    # levels[l] = jobs assigned to level l+1 so far
    levels: list[list[Job]] = []

    def live_count(level_jobs: list[Job], t: float) -> int:
        return sum(
            1
            for j in level_jobs
            if j.release <= t + TIME_EPS and j.deadline > t + TIME_EPS
        )

    for job in ordered:
        ceiling = min_demand_over(job)
        chosen: int | None = None
        for l in range(min(ceiling, len(levels))):
            if live_count(levels[l], job.release) <= 1:
                chosen = l
                break
        if chosen is None and ceiling > len(levels):
            chosen = len(levels)
            levels.append([])
        if chosen is None:
            # fallback: lowest level anywhere with a free overlap slot
            for l in range(len(levels)):
                if live_count(levels[l], job.release) <= 1:
                    chosen = l
                    break
            if chosen is None:
                chosen = len(levels)
                levels.append([])
        levels[chosen].append(job)
        level_of[job.id] = chosen + 1
    return level_of


def two_color_level(jobs: list[Job]) -> dict[int, int]:
    """2-color the overlap graph of one level's jobs (a forest).

    Returns ``job id -> 0/1``.  Raises if the level is not 2-colorable,
    which would mean three jobs overlap at a point — excluded by the level
    assignment invariant.
    """
    adj: dict[int, list[int]] = {j.id: [] for j in jobs}
    for i, a in enumerate(jobs):
        for b in jobs[i + 1 :]:
            if a.release < b.deadline - TIME_EPS and b.release < a.deadline - TIME_EPS:
                adj[a.id].append(b.id)
                adj[b.id].append(a.id)
    color: dict[int, int] = {}
    for j in jobs:
        if j.id in color:
            continue
        color[j.id] = 0
        queue = deque([j.id])
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                if v not in color:
                    color[v] = 1 - color[u]
                    queue.append(v)
                elif color[v] == color[u]:
                    raise RuntimeError(
                        "level overlap graph not bipartite — more than two "
                        "jobs overlap at a point"
                    )
    return color


def kumar_rudra(instance: Instance, g: int) -> BusyTimeSchedule:
    """Run the Kumar–Rudra-style 2-approximation on an interval instance.

    Pads the instance (Appendix A.1), assigns levels, groups ``g`` levels per
    machine pair with a parity split, strips the dummies and verifies the
    ``2 * profile`` certificate.
    """
    require_interval_jobs(instance, "Kumar-Rudra")
    require_capacity(g)
    if instance.n == 0:
        return BusyTimeSchedule.from_bundle_jobs(instance, g, [])

    padded, _dummy_ids = pad_to_multiple_of_g(instance, g)
    level_of = assign_levels(padded, g)
    max_level = max(level_of.values())

    jobs_by_level: dict[int, list[Job]] = {}
    for job in padded.jobs:
        jobs_by_level.setdefault(level_of[job.id], []).append(job)

    groups: list[list[Job]] = []
    num_groups = -(-max_level // g)
    for k in range(num_groups):
        lo, hi = k * g + 1, (k + 1) * g
        machine0: list[Job] = []
        machine1: list[Job] = []
        for l in range(lo, hi + 1):
            members = jobs_by_level.get(l, [])
            if not members:
                continue
            coloring = two_color_level(members)
            for job in members:
                (machine0 if coloring[job.id] == 0 else machine1).append(job)
        for machine in (machine0, machine1):
            real = [j for j in machine if j.label != DUMMY_LABEL]
            if real:
                groups.append(real)

    schedule = BusyTimeSchedule.from_bundle_jobs(instance, g, groups)
    certificate = 2.0 * compute_demand_profile(instance, g).cost
    if schedule.total_busy_time > certificate + 1e-6:
        raise RuntimeError(
            "Kumar-Rudra level assignment exceeded the 2x profile "
            f"certificate: {schedule.total_busy_time} > {certificate}"
        )
    return schedule
