"""Edge cases and boundary behaviour across the library."""

import pytest

from repro.core import TIME_EPS, Instance, Job


class TestDegenerateInstances:
    def test_single_slot_horizon(self):
        from repro.activetime import exact_active_time, round_active_time

        inst = Instance.from_tuples([(0, 1, 1)])
        assert exact_active_time(inst, 1).cost == 1
        sol = round_active_time(inst, 1, strict=True)
        assert sol.cost == 1

    def test_job_spanning_whole_horizon(self):
        from repro.activetime import exact_active_time

        inst = Instance.from_tuples([(0, 5, 5), (0, 5, 1)])
        s = exact_active_time(inst, 2)
        assert s.cost == 5  # rigid job forces every slot

    def test_all_jobs_identical(self):
        from repro.busytime import greedy_tracking

        inst = Instance.from_intervals([(1.0, 2.0)] * 7)
        s = greedy_tracking(inst, 3)
        s.verify()
        assert s.num_machines == 3  # ceil(7/3)
        assert s.total_busy_time == pytest.approx(3.0)

    def test_one_job_everything(self):
        from repro.busytime import (
            chain_peeling_two_approx,
            first_fit,
            greedy_tracking,
            kumar_rudra,
        )

        inst = Instance.from_intervals([(0.0, 2.5)])
        for fn in (first_fit, greedy_tracking, chain_peeling_two_approx,
                   kumar_rudra):
            s = fn(inst, 1)
            assert s.total_busy_time == pytest.approx(2.5)
            assert s.num_machines == 1

    def test_g_larger_than_n(self):
        from repro.busytime import greedy_tracking

        inst = Instance.from_intervals([(0, 1), (0.5, 2), (1.5, 3)])
        s = greedy_tracking(inst, 50)
        assert s.num_machines == 1


class TestNumericalBoundaries:
    def test_touching_windows_share_no_time(self):
        a = Job(0, 1, 1, id=0)
        b = Job(1, 2, 1, id=1)
        from repro.busytime import is_track

        assert is_track([a, b])

    def test_eps_length_jobs(self):
        from repro.busytime import compute_demand_profile

        eps = 1e-4  # far above TIME_EPS, far below 1
        inst = Instance.from_intervals([(0, eps), (eps / 2, eps)])
        profile = compute_demand_profile(inst, 1)
        assert profile.cost == pytest.approx(2 * eps - eps / 2, abs=1e-9)

    def test_near_integral_values_snap(self):
        from repro.activetime import snap

        assert snap(3.0000004) == 3.0
        assert snap(2.51) == 2.51

    def test_job_length_exactly_window(self):
        j = Job(1.5, 3.5, 2.0)
        assert j.is_interval
        assert j.latest_start == pytest.approx(1.5)


class TestLargeCapacity:
    def test_active_time_huge_g_is_chain_bound(self):
        from repro.activetime import exact_active_time

        # with effectively unlimited capacity the optimum is driven by the
        # tightest window structure, not by mass
        inst = Instance.from_tuples([(0, 3, 2)] * 10)
        s = exact_active_time(inst, 100)
        assert s.cost == 2

    def test_busy_time_g1_equals_coloring(self):
        from repro.busytime import exact_busy_time_interval

        # g = 1: busy time = total length regardless of grouping
        inst = Instance.from_intervals([(0, 2), (1, 3), (2, 4)])
        s = exact_busy_time_interval(inst, 1)
        assert s.total_busy_time == pytest.approx(6.0)


class TestChargingEdges:
    def test_half_exactly_at_boundary(self):
        from repro.activetime import ChargingLedger

        ledger = ChargingLedger()
        ledger.register_half(1, 0.5)  # exactly 1/2 is a legal half slot
        ledger.verify()

    def test_trio_boundary(self):
        from repro.activetime import ChargingLedger

        ledger = ChargingLedger()
        ledger.register_full(1)
        ledger.charge_barely(2, 0.25)
        rec = ledger.charge_barely(3, 0.25)  # 0.25 + 0.25 == 0.5 exactly
        assert rec.kind == "trio"

    def test_filler_boundary(self):
        from repro.activetime import ChargingLedger

        ledger = ChargingLedger()
        ledger.register_half(1, 0.5)
        rec = ledger.charge_barely(2, 0.5 - 1e-12)
        assert rec.kind == "filler"


class TestRoundingDegenerates:
    def test_all_jobs_same_deadline(self):
        from repro.activetime import round_active_time

        inst = Instance.from_tuples([(0, 4, 2), (1, 4, 1), (2, 4, 2)])
        sol = round_active_time(inst, 2, strict=True)
        sol.schedule.verify()
        assert len(sol.iterations) == 1

    def test_every_slot_distinct_deadline(self):
        from repro.activetime import round_active_time

        inst = Instance.from_tuples([(i, i + 1, 1) for i in range(6)])
        sol = round_active_time(inst, 2, strict=True)
        assert sol.cost == 6  # rigid unit chain: every slot forced

    def test_g_one(self):
        from repro.activetime import exact_active_time, round_active_time

        inst = Instance.from_tuples([(0, 6, 2), (0, 6, 2), (0, 6, 2)])
        sol = round_active_time(inst, 1, strict=True)
        assert sol.cost == exact_active_time(inst, 1).cost == 6


class TestPreemptiveEdges:
    def test_zero_slack_jobs_only(self):
        from repro.busytime import greedy_unbounded_preemptive

        inst = Instance.from_tuples([(0, 2, 2), (1, 4, 3)])
        s = greedy_unbounded_preemptive(inst)
        s.verify()
        assert s.total_busy_time == pytest.approx(4.0)

    def test_single_piece_when_contiguous(self):
        from repro.busytime import greedy_unbounded_preemptive

        inst = Instance.from_tuples([(0, 3, 3)])
        s = greedy_unbounded_preemptive(inst)
        assert len(s.pieces) == 1


class TestVerifierTolerance:
    def test_busy_schedule_tolerates_float_noise(self):
        from repro.busytime import BusyTimeSchedule

        inst = Instance.from_intervals([(0.0, 1.0)])
        jittered = Job(0.0 + TIME_EPS / 10, 1.0 + TIME_EPS / 10,
                       1.0, id=0)
        s = BusyTimeSchedule.from_bundle_jobs(inst, 1, [[jittered]])
        s.verify()  # sub-tolerance jitter is accepted
