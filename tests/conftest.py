"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Instance, Job


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG; tests that need variation draw from it."""
    return np.random.default_rng(20140623)  # SPAA 2014 conference date


@pytest.fixture
def tiny_instance() -> Instance:
    """Three small integral jobs used across active-time tests."""
    return Instance.from_tuples([(0, 4, 2), (1, 5, 3), (0, 6, 1)])


@pytest.fixture
def interval_instance() -> Instance:
    """Five interval jobs with a mix of overlaps."""
    return Instance.from_intervals(
        [(0.0, 2.0), (1.0, 3.0), (2.5, 4.0), (0.5, 1.5), (3.0, 5.0)]
    )


@pytest.fixture
def clique_instance() -> Instance:
    """Interval jobs all crossing t = 2."""
    return Instance.from_intervals(
        [(0.0, 3.0), (1.0, 4.0), (1.5, 2.5), (0.5, 3.5)]
    )
