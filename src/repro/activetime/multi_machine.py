"""Multi-machine active time (the Koehler–Khuller setting of Section 1.3).

The paper notes that the unit-job active-time results extend to a *finite
number of machines*: ``m`` identical machines, each switchable per slot and
each hosting at most ``g`` jobs while on; a job occupies one machine per
slot (it may migrate between slots).  The objective is the total number of
machine-on slot pairs, ``sum_t k_t`` where ``k_t <= m`` machines are on in
slot ``t``.

Observations that the implementation leans on:

* per slot, only the *count* ``k_t`` matters: with ``k_t`` machines on, up
  to ``k_t * g`` job units fit in slot ``t`` (and at most one unit per job);
  the per-machine split can be recovered greedily afterwards;
* therefore the problem is the single-machine active-time problem with
  slot-dependent capacity ``k_t * g`` and cost ``k_t`` — the flow network of
  Figure 2 generalizes by giving slot ``t``'s sink edge capacity
  ``k_t * g``;
* with ``m = 1`` everything reduces exactly to the paper's model (tested).

Provided here: an exact MILP, the LP lower bound, and a lazy greedy
heuristic (open machines right-to-left only as needed); the tests compare
all three and check the ``m = 1`` reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from ..core.jobs import Instance
from ..core.validation import require_capacity, require_integral
from ..flow.dinic import Dinic
from ..solvers import LinearProgram, SolverBackend, solve_ir

__all__ = [
    "MultiMachineSolution",
    "multi_machine_exact",
    "multi_machine_lp_bound",
    "multi_machine_lazy_greedy",
    "is_feasible_multiplicity",
]


@dataclass(frozen=True)
class MultiMachineSolution:
    """Machines-on counts per slot plus the induced cost."""

    instance: Instance
    g: int
    m: int
    multiplicity: tuple[int, ...]  # k_t for t = 1..T (index 0 => slot 1)

    @property
    def cost(self) -> int:
        """Total machine-on slots, ``sum_t k_t``."""
        return int(sum(self.multiplicity))

    def verify(self) -> None:
        """Bounds on ``k_t`` plus schedulability via the capacity flow."""
        for k in self.multiplicity:
            if not 0 <= k <= self.m:
                raise AssertionError(f"multiplicity {k} outside [0, {self.m}]")
        if not is_feasible_multiplicity(
            self.instance, self.g, list(self.multiplicity)
        ):
            raise AssertionError("multiplicities cannot host all jobs")


def is_feasible_multiplicity(
    instance: Instance, g: int, multiplicity: list[int]
) -> bool:
    """Feasibility with slot-dependent capacity ``k_t * g`` (Fig. 2 flow)."""
    require_integral(instance)
    require_capacity(g)
    T = instance.horizon
    if len(multiplicity) != T:
        raise ValueError(f"need {T} multiplicities, got {len(multiplicity)}")
    n = instance.n
    net = Dinic(n + T + 2)
    source, sink = 0, n + T + 1
    total = 0
    for pos, job in enumerate(instance.jobs):
        p = job.integral_length()
        total += p
        net.add_edge(source, 1 + pos, p)
        for t in job.feasible_slots():
            net.add_edge(1 + pos, n + t, 1)
    for t in range(1, T + 1):
        net.add_edge(n + t, sink, multiplicity[t - 1] * g)
    return net.max_flow(source, sink).value == total


def _build_model(instance: Instance, g: int, m: int):
    """Shared LP/MILP constraint system over (k_t, x_{t,j})."""
    T = instance.horizon
    x_index: dict[tuple[int, int], int] = {}
    col = T
    for job in instance.jobs:
        for t in job.feasible_slots():
            x_index[(job.id, t)] = col
            col += 1
    num_vars = col

    rows, cols, vals, b = [], [], [], []
    row = 0
    # per slot: sum_j x_{t,j} <= g * k_t
    per_slot: dict[int, list[int]] = {}
    for (jid, t), xc in x_index.items():
        per_slot.setdefault(t, []).append(xc)
    for t in range(1, T + 1):
        for xc in per_slot.get(t, []):
            rows.append(row)
            cols.append(xc)
            vals.append(1.0)
        rows.append(row)
        cols.append(t - 1)
        vals.append(-float(g))
        b.append(0.0)
        row += 1
    # coverage
    for job in instance.jobs:
        for t in job.feasible_slots():
            rows.append(row)
            cols.append(x_index[(job.id, t)])
            vals.append(-1.0)
        b.append(-float(job.integral_length()))
        row += 1
    a = sparse.coo_matrix((vals, (rows, cols)), shape=(row, num_vars)).tocsr()
    c = np.zeros(num_vars)
    c[:T] = 1.0
    bounds_lo = np.zeros(num_vars)
    bounds_hi = np.ones(num_vars)
    bounds_hi[:T] = float(m)
    return a, np.asarray(b), c, bounds_lo, bounds_hi, T


def _multi_machine_program(
    instance: Instance, g: int, m: int, *, integral: bool
) -> tuple[LinearProgram, int]:
    """The shared system as a backend-neutral IR (plus ``T``)."""
    a, b, c, lo, hi, T = _build_model(instance, g, m)
    integrality = np.zeros(len(c))
    if integral:
        integrality[:T] = 1
    lp = LinearProgram.build(
        c,
        a_ub=a,
        b_ub=b,
        lb=lo,
        ub=hi,
        integrality=integrality,
        label=f"multi-machine {'IP' if integral else 'LP'} (g={g}, m={m})",
    )
    return lp, T


def multi_machine_exact(
    instance: Instance,
    g: int,
    m: int,
    *,
    backend: str | SolverBackend | None = None,
) -> MultiMachineSolution:
    """Exact minimum machine-on slots (MILP over multiplicities)."""
    require_integral(instance)
    require_capacity(g)
    require_capacity(m)
    if instance.n == 0:
        return MultiMachineSolution(instance, g, m, tuple())
    lp, T = _multi_machine_program(instance, g, m, integral=True)
    result = solve_ir(lp, backend=backend)
    if result.status == "infeasible":
        raise RuntimeError(
            f"multi-machine instance infeasible for g={g}, m={m}"
        )
    result.require_optimal(f"multi-machine exact (g={g}, m={m})")
    ks = tuple(int(round(v)) for v in result.x[:T])
    solution = MultiMachineSolution(instance, g, m, ks)
    solution.verify()
    return solution


def multi_machine_lp_bound(
    instance: Instance,
    g: int,
    m: int,
    *,
    backend: str | SolverBackend | None = None,
) -> float:
    """LP relaxation value — a lower bound on the exact cost."""
    require_integral(instance)
    if instance.n == 0:
        return 0.0
    lp, _ = _multi_machine_program(instance, g, m, integral=False)
    result = solve_ir(lp, backend=backend)
    if result.status == "infeasible":
        raise RuntimeError(f"multi-machine LP infeasible for g={g}, m={m}")
    result.require_optimal(f"multi-machine LP bound (g={g}, m={m})")
    return float(result.objective)


def multi_machine_lazy_greedy(
    instance: Instance, g: int, m: int
) -> MultiMachineSolution:
    """Heuristic: lower multiplicities greedily from the all-on solution.

    Start with ``k_t = m`` everywhere (must be feasible or the instance has
    no solution) and sweep slots left to right, decrementing each ``k_t`` as
    far as feasibility allows — the multi-machine analogue of the Theorem-1
    minimal-feasible procedure.  No worst-case guarantee is claimed; the
    bench compares it against the exact optimum and the LP bound.
    """
    require_integral(instance)
    require_capacity(g)
    require_capacity(m)
    if instance.n == 0:
        return MultiMachineSolution(instance, g, m, tuple())
    T = instance.horizon
    ks = [m] * T
    if not is_feasible_multiplicity(instance, g, ks):
        raise RuntimeError(
            f"instance infeasible even with all {m} machines always on"
        )
    for t in range(T):
        while ks[t] > 0:
            ks[t] -= 1
            if not is_feasible_multiplicity(instance, g, ks):
                ks[t] += 1
                break
    return MultiMachineSolution(instance, g, m, tuple(ks))
