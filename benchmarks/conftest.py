"""Shared helpers for the benchmark/experiment harness.

Each ``test_bench_*.py`` file regenerates one experiment from DESIGN.md's
per-experiment index: it measures runtime with pytest-benchmark, asserts the
paper's *shape* claims (who wins, by roughly what factor, where the trend
goes), and prints the claimed-vs-measured rows.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2014)


@pytest.fixture
def emit():
    """Print an experiment table (shown with -s; kept in captured output)."""

    def _emit(title: str, header: list[str], rows: list[list[object]]) -> None:
        print()
        print(format_table(title, header, rows))

    return _emit
