"""Unit tests for the Figure-2 feasibility network (repro.flow.feasibility)."""

import pytest

from repro.core import Instance
from repro.flow import (
    ActiveTimeFeasibility,
    extract_assignment,
    is_feasible_slot_set,
)
from repro.instances import random_active_time_instance


class TestBasicProbes:
    def test_all_slots_feasible(self, tiny_instance):
        oracle = ActiveTimeFeasibility(tiny_instance, g=2)
        assert oracle.is_feasible(range(1, 7))

    def test_empty_slot_set_infeasible(self, tiny_instance):
        oracle = ActiveTimeFeasibility(tiny_instance, g=2)
        assert not oracle.is_feasible([])

    def test_exact_minimum_slots(self):
        # two unit jobs, same 1-slot window, g = 2: one slot suffices
        inst = Instance.from_tuples([(0, 1, 1), (0, 1, 1)])
        oracle = ActiveTimeFeasibility(inst, g=2)
        assert oracle.is_feasible([1])
        oracle1 = ActiveTimeFeasibility(inst, g=1)
        assert not oracle1.is_feasible([1])

    def test_max_flow_value_partial(self, tiny_instance):
        oracle = ActiveTimeFeasibility(tiny_instance, g=2)
        # Only slot 1 open: at most 2 units schedulable (capacity g=2).
        assert oracle.max_flow_value([1]) == 2

    def test_slots_outside_horizon_ignored(self, tiny_instance):
        oracle = ActiveTimeFeasibility(tiny_instance, g=2)
        assert oracle.is_feasible(list(range(1, 7)) + [99, -3, 0])


class TestMonotonicity:
    def test_feasibility_monotone_in_slots(self, rng):
        for _ in range(15):
            inst = random_active_time_instance(6, 10, rng=rng)
            oracle = ActiveTimeFeasibility(inst, g=2)
            slots = set(range(1, 11))
            if not oracle.is_feasible(slots):
                continue
            # removing slots can only lose feasibility, never regain it
            lost = False
            for t in sorted(slots):
                slots.discard(t)
                feasible = oracle.is_feasible(slots)
                if lost:
                    assert not feasible or oracle.is_feasible(slots | {t})
                lost = lost or not feasible

    def test_feasibility_monotone_in_g(self, rng):
        for _ in range(10):
            inst = random_active_time_instance(6, 8, rng=rng)
            slots = range(1, 9)
            feas = [
                is_feasible_slot_set(inst, g, slots) for g in range(1, 5)
            ]
            # once feasible, stays feasible as g grows
            for a, b in zip(feas, feas[1:]):
                assert b or not a


class TestAssignment:
    def test_assignment_none_when_infeasible(self, tiny_instance):
        assert extract_assignment(tiny_instance, 2, [1]) is None

    def test_assignment_structure(self, tiny_instance):
        assignment = extract_assignment(tiny_instance, 2, range(1, 7))
        assert assignment is not None
        for job in tiny_instance.jobs:
            slots = assignment[job.id]
            assert len(slots) == job.integral_length()
            assert len(set(slots)) == len(slots)
            for t in slots:
                assert job.is_live_in_slot(t)

    def test_assignment_respects_capacity(self, rng):
        for _ in range(10):
            inst = random_active_time_instance(8, 10, rng=rng)
            g = int(rng.integers(1, 4))
            assignment = extract_assignment(inst, g, range(1, 11))
            if assignment is None:
                continue
            loads = {}
            for slots in assignment.values():
                for t in slots:
                    loads[t] = loads.get(t, 0) + 1
            assert all(v <= g for v in loads.values())

    def test_oracle_reusable_across_probes(self, tiny_instance):
        oracle = ActiveTimeFeasibility(tiny_instance, g=2)
        full = oracle.max_flow_value(range(1, 7))
        _ = oracle.max_flow_value([2])
        assert oracle.max_flow_value(range(1, 7)) == full


class TestValidation:
    def test_rejects_non_integral(self):
        inst = Instance.from_intervals([(0.0, 1.5)])
        with pytest.raises(ValueError):
            ActiveTimeFeasibility(inst, 1)

    def test_rejects_bad_capacity(self, tiny_instance):
        with pytest.raises(ValueError):
            ActiveTimeFeasibility(tiny_instance, 0)
