"""E2 — Theorem 1 / Figure 3: minimal feasible solutions approach 3 OPT.

Paper claims: any minimal feasible solution costs <= 3 OPT (Theorem 1); the
Figure-3 gadget admits a minimal solution of cost 3g - 2 against OPT = g, so
the bound is asymptotically tight.  We regenerate the gadget for a sweep of
g, verify the adversarial slot set is feasible at cost 3g - 2, and show the
library's greedy minimizer (inside-out closing order) actually lands on it.
"""

import pytest

from repro.activetime import exact_active_time, minimal_feasible_schedule
from repro.flow import is_feasible_slot_set
from repro.instances import figure3


@pytest.mark.parametrize("g", [3, 4, 6, 8])
def test_fig3_ratio_trend(g, emit):
    gad = figure3(g)
    exact = exact_active_time(gad.instance, g)
    assert exact.cost == g

    slots = gad.witness["adversarial_slots"]
    assert is_feasible_slot_set(gad.instance, g, slots)
    adversarial = len(slots)
    assert adversarial == 3 * g - 2

    greedy = minimal_feasible_schedule(gad.instance, g, order="inside_out")
    greedy.verify()
    assert greedy.cost <= 3 * exact.cost

    emit(
        f"E2 / Figure 3 — minimal feasible vs OPT, g={g}",
        ["quantity", "value", "ratio vs OPT"],
        [
            ["OPT (exact MILP)", exact.cost, 1.0],
            ["paper adversarial minimal (3g-2)", adversarial, adversarial / g],
            ["greedy minimal (inside_out)", greedy.cost, greedy.cost / g],
            ["paper limit", "3g-2 -> 3·OPT", 3.0],
        ],
    )


def test_fig3_ratio_is_monotone_in_g():
    ratios = []
    for g in (3, 4, 6, 8, 12):
        gad = figure3(g)
        slots = gad.witness["adversarial_slots"]
        ratios.append(len(slots) / exact_active_time(gad.instance, g).cost)
    assert ratios == sorted(ratios)
    assert ratios[-1] > 2.8  # approaching 3


def test_greedy_reaches_adversarial_cost():
    """The library's own minimizer exhibits the worst case on the gadget."""
    for g in (3, 4, 6):
        gad = figure3(g)
        s = minimal_feasible_schedule(gad.instance, g, order="inside_out")
        assert s.cost == 3 * g - 2


@pytest.mark.parametrize("g", [3, 6])
def test_minimal_feasible_runtime(benchmark, g):
    gad = figure3(g)
    schedule = benchmark(
        minimal_feasible_schedule, gad.instance, g, order="inside_out"
    )
    assert schedule.is_valid()
