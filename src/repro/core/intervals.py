"""Interval algebra: spans, unions, and the paper's *interesting intervals*.

Busy-time analysis (Section 4.1) is phrased entirely in terms of half-open
real intervals ``[a, b)``:

* ``ℓ(I) = b - a`` — the *length* of an interval (Definition 9);
* ``Sp(S)`` — the *span* of a set of intervals, i.e. the measure of its
  projection onto the time axis (Definition 10);
* *interesting intervals* (Definition 12) — maximal intervals in which no job
  begins or ends; the demand is uniform over each one, and there are at most
  ``2n`` of them.

All functions treat intervals as ``(start, end)`` tuples with
``start <= end``; empty intervals are tolerated and contribute nothing.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .jobs import TIME_EPS, Instance, Job

__all__ = [
    "length",
    "total_length",
    "merge_intervals",
    "span",
    "intersect",
    "intersection_length",
    "subtract",
    "contains",
    "interesting_intervals",
    "coverage_counts",
]

Interval = tuple[float, float]


def length(interval: Interval) -> float:
    """``ℓ([a, b)) = b - a`` (Definition 9)."""
    a, b = interval
    return max(0.0, b - a)


def total_length(intervals: Iterable[Interval]) -> float:
    """Sum of lengths, counting overlaps multiply (the *mass* ``ℓ(S)``)."""
    return sum(length(iv) for iv in intervals)


def merge_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Normalize a collection of intervals into disjoint, sorted intervals.

    Adjacent intervals (touching within :data:`TIME_EPS`) are coalesced, so
    the output is the canonical representation of the union.
    """
    ivs = sorted((a, b) for a, b in intervals if b - a > TIME_EPS)
    merged: list[Interval] = []
    for a, b in ivs:
        if merged and a <= merged[-1][1] + TIME_EPS:
            prev_a, prev_b = merged[-1]
            merged[-1] = (prev_a, max(prev_b, b))
        else:
            merged.append((a, b))
    return merged


def span(intervals: Iterable[Interval]) -> float:
    """``Sp(S)``: measure of the union of the intervals (Definition 10)."""
    return sum(b - a for a, b in merge_intervals(intervals))


def intersect(x: Interval, y: Interval) -> Interval | None:
    """Intersection of two intervals, or ``None`` when (essentially) empty."""
    a = max(x[0], y[0])
    b = min(x[1], y[1])
    if b - a <= TIME_EPS:
        return None
    return (a, b)


def intersection_length(x: Interval, y: Interval) -> float:
    """``ℓ(x ∩ y)``."""
    iv = intersect(x, y)
    return 0.0 if iv is None else length(iv)


def subtract(base: Interval, pieces: Iterable[Interval]) -> list[Interval]:
    """Remove ``pieces`` from ``base``, returning the remaining sub-intervals."""
    remaining: list[Interval] = [base]
    for cut in merge_intervals(pieces):
        nxt: list[Interval] = []
        for a, b in remaining:
            lo, hi = cut
            if hi <= a + TIME_EPS or lo >= b - TIME_EPS:
                nxt.append((a, b))
                continue
            if lo > a + TIME_EPS:
                nxt.append((a, lo))
            if hi < b - TIME_EPS:
                nxt.append((hi, b))
        remaining = nxt
    return [iv for iv in remaining if length(iv) > TIME_EPS]


def contains(outer: Interval, inner: Interval) -> bool:
    """True when ``inner ⊆ outer`` up to tolerance."""
    return (
        outer[0] <= inner[0] + TIME_EPS and inner[1] <= outer[1] + TIME_EPS
    )


def interesting_intervals(instance: Instance) -> list[Interval]:
    """Definition 12: maximal intervals in which no job begins or ends.

    The returned intervals partition ``[min_j r_j, max_j d_j)`` at every
    release time and deadline; segments not covered by any job window are
    *excluded* (demand zero there, and no busy-time algorithm ever opens a
    machine over them).  There are at most ``2n - 1`` segments total.
    """
    if not instance.jobs:
        return []
    points = instance.event_points()
    segments: list[Interval] = []
    for a, b in zip(points, points[1:]):
        if b - a <= TIME_EPS:
            continue
        mid = 0.5 * (a + b)
        if instance.raw_demand_at(mid) > 0:
            segments.append((a, b))
    return segments


def coverage_counts(
    intervals: Sequence[Interval],
) -> list[tuple[Interval, int]]:
    """Decompose the plane into segments with the number of covering intervals.

    Returns ``(segment, count)`` pairs over the union of the inputs; segments
    with zero coverage are omitted.  This is the continuous analogue of the
    raw demand ``|A(t)|`` for arbitrary interval sets (used to verify machine
    capacity constraints in busy-time schedules).
    """
    events: list[tuple[float, int]] = []
    for a, b in intervals:
        if b - a > TIME_EPS:
            events.append((a, +1))
            events.append((b, -1))
    if not events:
        return []
    events.sort()
    out: list[tuple[Interval, int]] = []
    depth = 0
    prev = events[0][0]
    i = 0
    while i < len(events):
        t = events[i][0]
        if t - prev > TIME_EPS and depth > 0:
            out.append(((prev, t), depth))
        while i < len(events) and abs(events[i][0] - t) <= TIME_EPS:
            depth += events[i][1]
            i += 1
        prev = t
    return out
