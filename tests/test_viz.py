"""Tests for the ASCII renderers (repro.viz)."""

import pytest

from repro import (
    Instance,
    compute_demand_profile,
    exact_active_time,
    greedy_tracking,
)
from repro.viz import (
    render_active_schedule,
    render_busy_schedule,
    render_demand_profile,
    render_instance,
)


class TestRenderInstance:
    def test_one_row_per_job(self, interval_instance):
        out = render_instance(interval_instance)
        for j in interval_instance.jobs:
            assert f"j{j.id}" in out

    def test_flexible_jobs_show_slack(self, tiny_instance):
        out = render_instance(tiny_instance)
        assert "." in out  # slack markers
        assert "=" in out  # mass markers

    def test_empty(self):
        assert "empty" in render_instance(Instance(tuple()))

    def test_width_respected(self, interval_instance):
        out = render_instance(interval_instance, width=30)
        for line in out.splitlines()[1:]:
            assert len(line) <= 30 + 10  # label + bars


class TestRenderActive:
    def test_contains_cost_and_slots(self, tiny_instance):
        s = exact_active_time(tiny_instance, 2)
        out = render_active_schedule(s)
        assert f"cost: {s.cost}" in out
        assert "slot" in out

    def test_marks_match_assignment(self, tiny_instance):
        s = exact_active_time(tiny_instance, 2)
        grid = "\n".join(
            line
            for line in render_active_schedule(s).splitlines()
            if line.startswith("j")
        )
        # a unit mark appears once per scheduled unit
        assert grid.count("x") == int(tiny_instance.total_length)

    def test_empty(self):
        from repro.activetime import ActiveTimeSchedule

        out = render_active_schedule(
            ActiveTimeSchedule(Instance(tuple()), 1, tuple(), {})
        )
        assert "empty" in out


class TestRenderBusy:
    def test_machines_and_total(self, interval_instance):
        s = greedy_tracking(interval_instance, 2)
        out = render_busy_schedule(s)
        for k in range(s.num_machines):
            assert f"machine {k}" in out
        assert "total busy time" in out

    def test_busy_markers_present(self, interval_instance):
        s = greedy_tracking(interval_instance, 2)
        assert "^" in render_busy_schedule(s)

    def test_empty(self):
        from repro.busytime import BusyTimeSchedule

        s = BusyTimeSchedule.from_bundle_jobs(Instance(tuple()), 1, [])
        assert "no machines" in render_busy_schedule(s)


class TestRenderProfile:
    def test_levels_stacked(self, interval_instance):
        profile = compute_demand_profile(interval_instance, 2)
        out = render_demand_profile(profile)
        for level in range(1, profile.max_demand + 1):
            assert f"D>={level}" in out

    def test_cost_shown(self, interval_instance):
        profile = compute_demand_profile(interval_instance, 2)
        assert f"cost={profile.cost:g}" in render_demand_profile(profile)

    def test_empty(self):
        from repro.busytime import DemandProfile

        profile = DemandProfile(segments=tuple(), raw=tuple(), g=2)
        assert "empty" in render_demand_profile(profile)
