"""`BatchRunner` — shard a stream of solve tasks across a worker pool.

Design points:

* **Deterministic ordering** — results come back in task order no
  matter which worker finished first, so parallel and serial runs of
  the same task list produce identical records (modulo timings).
* **Cache first** — tasks whose content digest is already in the
  :class:`~repro.engine.cache.ResultCache` never reach the pool.
* **Graceful failure** — a solver error becomes a ``TaskResult`` with
  ``ok=False`` (annotated with digest and seed by the worker); it never
  kills the batch.
* **Hard timeouts** — when any task carries a deadline, the parallel
  path switches to a *watchdog pool*: dedicated worker processes served
  over pipes, with the parent terminating and replacing any worker that
  overruns its task's budget (``SIGALRM`` cannot interrupt a solver
  stuck inside HiGHS C code; killing the process can).  The task gets a
  ``timeout`` result and the batch continues on a fresh worker.
* **Clean interrupt** — ``KeyboardInterrupt`` cancels outstanding
  futures and shuts the pool down without waiting, so Ctrl-C leaves no
  orphaned workers behind.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Sequence

from .cache import ResultCache
from .workers import Task, TaskResult, execute_task, failure_result, worker_loop

__all__ = ["BatchRunner"]


@dataclass
class _WatchdogWorker:
    """One dedicated worker process plus its in-flight task bookkeeping."""

    proc: mp.process.BaseProcess
    conn: object  # parent end of the pipe
    pos: int = -1
    task: Task | None = None
    started: float = field(default=0.0)
    deadline: float | None = None

    @classmethod
    def spawn(cls, ctx) -> "_WatchdogWorker":
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=worker_loop, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        return cls(proc=proc, conn=parent_conn)

    def dispatch(self, pos: int, task: Task, grace: float) -> None:
        self.conn.send(task)
        self.pos = pos
        self.task = task
        self.started = time.monotonic()
        self.deadline = (
            self.started + task.timeout + grace
            if task.timeout is not None
            else None
        )

    def collect(self) -> TaskResult | None:
        """The worker's answer, or ``None`` when the process died."""
        try:
            return self.conn.recv()
        except (EOFError, OSError):
            return None

    def clear(self) -> None:
        self.pos, self.task, self.deadline = -1, None, None

    def replace(self, ctx) -> "_WatchdogWorker":
        """Kill this worker and hand back a fresh one."""
        self.kill()
        return _WatchdogWorker.spawn(ctx)

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=1.0)

    def shutdown(self) -> None:
        """Polite stop for idle workers; force-kill anything still busy."""
        if self.task is None and self.proc.is_alive():
            try:
                self.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        self.kill()


class BatchRunner:
    """Run many solve tasks, optionally in parallel, with caching.

    Parameters
    ----------
    jobs:
        Worker-process count; ``1`` runs everything in-process (useful
        for debugging and required for solvers registered only in the
        current process).
    cache:
        Optional result cache consulted before dispatch and updated
        with every successful result.
    watchdog_grace:
        Extra seconds the parent allows past a task's ``timeout`` before
        terminating the worker — headroom for the in-worker ``SIGALRM``
        to fire first (it produces a cheaper, stack-annotated failure).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        *,
        watchdog_grace: float = 1.0,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if watchdog_grace < 0:
            raise ValueError(
                f"watchdog_grace must be >= 0, got {watchdog_grace}"
            )
        self.jobs = jobs
        self.cache = cache
        self.watchdog_grace = watchdog_grace
        #: Number of cache hits in the most recent :meth:`run`.
        self.last_cache_hits = 0
        #: Workers killed by the watchdog in the most recent :meth:`run`.
        self.last_watchdog_kills = 0

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Task]) -> list[TaskResult]:
        """Execute ``tasks`` and return results in task order.

        Tasks sharing a content digest are solved once per run: the
        first occurrence executes, later ones reuse its result (marked
        ``cached``) even when no :class:`ResultCache` is configured.
        """
        results: list[TaskResult | None] = [None] * len(tasks)
        pending: list[Task] = []
        pending_pos: list[int] = []
        first_by_digest: dict[str, int] = {}
        dup_of: dict[int, int] = {}
        self.last_cache_hits = 0
        self.last_watchdog_kills = 0

        for pos, task in enumerate(tasks):
            hit = self._cache_lookup(task)
            if hit is not None:
                results[pos] = hit
                self.last_cache_hits += 1
                continue
            first = first_by_digest.get(task.digest)
            if first is not None:
                dup_of[pos] = first
                continue
            first_by_digest[task.digest] = pos
            pending.append(task)
            pending_pos.append(pos)

        if pending:
            # strict: _execute guarantees one result per task, and a
            # silent length mismatch here would shift every later result
            # onto the wrong task.
            for pos, result in zip(
                pending_pos, self._execute(pending), strict=True
            ):
                results[pos] = result
                self._cache_store(result)

        retry: list[tuple[int, Task]] = []
        for pos, first in dup_of.items():
            source = results[first]
            if source is not None and source.ok:
                results[pos] = self._reanchor(source, tasks[pos])
                self.last_cache_hits += 1
            else:
                # Mirrors _cache_store's policy: failures (timeouts,
                # transient errors) are retried, never reused.
                retry.append((pos, tasks[pos]))
        if retry:
            # Same dispatch as the first wave, so deadlined retries keep
            # the watchdog (an inline retry of a natively-wedged solve
            # would hang the parent past its timeout).
            executed = self._execute([t for _, t in retry])
            for (pos, _), result in zip(retry, executed, strict=True):
                results[pos] = result
                self._cache_store(result)

        missing = [pos for pos, r in enumerate(results) if r is None]
        if missing:  # pragma: no cover - guarded by _execute's invariant
            raise RuntimeError(
                f"BatchRunner produced no result for task position(s) "
                f"{missing} of {len(tasks)}"
            )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _execute(self, pending: Sequence[Task]) -> list[TaskResult]:
        """Dispatch one wave of tasks to the right execution strategy.

        Deadlined tasks need the watchdog even when only one is pending
        — the serial path's SIGALRM cannot interrupt a solver stuck in
        native code.  jobs=1 stays in-process by contract (solvers
        registered only in this process), so its timeouts remain soft.

        Invariant: exactly one result per pending task, in task order.
        Callers zip the returned list against task positions, so a
        dropped slot would silently assign every later result to the
        wrong task.  Strategies fill worker-death gaps with
        ``failure_result`` (via :meth:`_sealed`) and never filter.
        """
        if self.jobs > 1 and any(t.timeout is not None for t in pending):
            executed = self._run_watchdog(pending)
        elif self.jobs == 1 or len(pending) == 1:
            executed = [execute_task(t) for t in pending]
        else:
            executed = self._run_parallel(pending)
        if len(executed) != len(pending):
            raise RuntimeError(
                f"execution strategy returned {len(executed)} results "
                f"for {len(pending)} tasks; results would be misaligned"
            )
        return executed

    @staticmethod
    def _sealed(
        results: list[TaskResult | None], pending: Sequence[Task]
    ) -> list[TaskResult]:
        """``results`` with every empty slot turned into an explicit failure.

        A slot can only be empty if an execution strategy lost track of
        its task (e.g. a worker died in a way no handler caught); the
        task gets a visible ``ok=False`` record at its own position
        rather than being dropped and shifting its neighbours.
        """
        return [
            result
            if result is not None
            else failure_result(
                pending[pos],
                "runner produced no result for this task "
                "(worker lost without a recorded failure)",
                0.0,
            )
            for pos, result in enumerate(results)
        ]

    # ------------------------------------------------------------------
    # Watchdog pool (used whenever any pending task carries a timeout)
    # ------------------------------------------------------------------
    def _run_watchdog(self, pending: Sequence[Task]) -> list[TaskResult]:
        """Run tasks on dedicated workers, killing any that overrun.

        Each worker owns one pipe and one task at a time, so the parent
        always knows which task a worker holds and since when.  On
        overrun (or worker death) the task gets a failure result, the
        process is terminated, and a replacement worker is spawned.
        """
        ctx = mp.get_context()
        results: list[TaskResult | None] = [None] * len(pending)
        queue: list[tuple[int, Task]] = list(enumerate(pending))
        queue.reverse()  # pop() from the tail keeps task order
        workers: list[_WatchdogWorker] = [
            _WatchdogWorker.spawn(ctx)
            for _ in range(min(self.jobs, len(pending)))
        ]
        done = 0
        try:
            while done < len(pending):
                for i, worker in enumerate(workers):
                    if worker.task is not None or not queue:
                        continue
                    pos, task = queue.pop()
                    try:
                        worker.dispatch(pos, task, self.watchdog_grace)
                    except (BrokenPipeError, OSError):
                        # Worker died while idle: one fresh worker gets
                        # one retry, then the task is marked failed.
                        workers[i] = worker = worker.replace(ctx)
                        try:
                            worker.dispatch(pos, task, self.watchdog_grace)
                        except (BrokenPipeError, OSError):
                            results[pos] = failure_result(
                                task, "could not dispatch to worker", 0.0
                            )
                            done += 1
                busy = [w for w in workers if w.task is not None]
                if not busy:
                    continue  # nothing in flight; re-check done/queue
                now = time.monotonic()
                wait_for = min(
                    (w.deadline - now for w in busy if w.deadline is not None),
                    default=None,
                )
                ready = connection_wait(
                    [w.conn for w in busy],
                    timeout=None if wait_for is None else max(wait_for, 0.0),
                )
                now = time.monotonic()
                for worker in list(busy):
                    if worker.conn in ready:
                        result = worker.collect()
                        if result is None:  # worker died mid-task
                            result = failure_result(
                                worker.task,
                                "worker process died (killed or crashed)",
                                now - worker.started,
                            )
                            workers[workers.index(worker)] = worker.replace(
                                ctx
                            )
                        results[worker.pos] = result
                        worker.clear()
                        done += 1
                    elif worker.deadline is not None and now > worker.deadline:
                        results[worker.pos] = failure_result(
                            worker.task,
                            f"timed out after {worker.task.timeout:g}s "
                            "(worker terminated by watchdog)",
                            now - worker.started,
                        )
                        done += 1
                        self.last_watchdog_kills += 1
                        workers[workers.index(worker)] = worker.replace(ctx)
        finally:
            for worker in workers:
                worker.shutdown()
        return self._sealed(results, pending)

    # ------------------------------------------------------------------
    def _run_parallel(self, pending: Sequence[Task]) -> list[TaskResult]:
        """Fan pending tasks out to a process pool, preserving order."""
        executor = ProcessPoolExecutor(max_workers=self.jobs)
        futures: dict = {}
        try:
            futures = {
                executor.submit(execute_task, task): i
                for i, task in enumerate(pending)
            }
            executed: list[TaskResult | None] = [None] * len(pending)
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    executed[futures[future]] = future.result()
        except KeyboardInterrupt:
            for future in futures:
                future.cancel()
            # shutdown(wait=False) lets in-flight tasks run to completion,
            # which can leave workers grinding long after Ctrl-C — kill
            # them outright so nothing is orphaned.
            processes = list(getattr(executor, "_processes", {}).values())
            executor.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                process.terminate()
            for process in processes:
                process.join(timeout=1.0)
            raise
        except BaseException:
            # e.g. BrokenProcessPool from an OOM-killed worker: still
            # release the pool before propagating.
            executor.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            executor.shutdown(wait=True)
        return self._sealed(executed, pending)

    # ------------------------------------------------------------------
    def _cache_lookup(self, task: Task) -> TaskResult | None:
        if self.cache is None:
            return None
        record = self.cache.get(task.digest)
        if record is None:
            return None
        return self._reanchor(TaskResult.from_record(record), task)

    @staticmethod
    def _reanchor(result: TaskResult, task: Task) -> TaskResult:
        """A reused result re-anchored to this task's position/provenance."""
        return TaskResult(
            index=task.index,
            digest=result.digest,
            problem=result.problem,
            algorithm=result.algorithm,
            g=result.g,
            n=result.n,
            ok=result.ok,
            objective=result.objective,
            metrics=result.metrics,
            error=result.error,
            elapsed=result.elapsed,
            cached=True,
            meta=task.meta or result.meta,
        )

    def _cache_store(self, result: TaskResult) -> None:
        # Failures are not cached: a timeout or transient error should be
        # retried on the next run rather than pinned forever.
        if self.cache is not None and result.ok:
            self.cache.put(result.digest, result.to_record())
