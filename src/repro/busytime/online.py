"""Online busy-time scheduling — the Shalom et al. setting (Section 1.3).

Interval jobs arrive one at a time (by release time, ties broken by the
adversary through input order); each must be *irrevocably* assigned to a
machine on arrival.  Shalom et al. prove no deterministic algorithm beats
``g``-competitive on general instances and give an ``O(g)``-competitive
algorithm.

This module provides the simulation scaffolding and two natural policies:

* :func:`online_first_fit` — first machine whose capacity admits the job;
* :func:`online_best_fit` — the machine whose busy time grows the least
  (ties to the lowest index), a common consolidation heuristic.

plus :func:`nested_adversarial_instance`, a nested clique family that makes
early commitments expensive (a stress input, not a reproduction of the
Shalom et al. Ω(g) lower-bound construction — that bound needs an adaptive
adversary).  The benchmark harness measures empirical competitive ratios
against the offline exact MILP over adversarial arrival permutations.
"""

from __future__ import annotations

from typing import Callable

from ..core.intervals import span
from ..core.jobs import Instance, Job
from ..core.validation import require_capacity, require_interval_jobs
from .firstfit import fits_in_bundle
from .schedule import BusyTimeSchedule

__all__ = [
    "arrival_order",
    "online_first_fit",
    "online_best_fit",
    "nested_adversarial_instance",
]

Policy = Callable[[list[list[Job]], Job, int], int | None]


def arrival_order(instance: Instance) -> list[Job]:
    """Arrival sequence: by release time, input order breaking ties.

    The adversary controls tie-breaking through the instance's job order,
    which is exactly how the lower-bound constructions are phrased.
    """
    indexed = list(enumerate(instance.jobs))
    indexed.sort(key=lambda pair: (pair[1].release, pair[0]))
    return [j for _, j in indexed]


def _run_online(instance: Instance, g: int, choose: Policy) -> BusyTimeSchedule:
    require_interval_jobs(instance, "online scheduling")
    require_capacity(g)
    bundles: list[list[Job]] = []
    for job in arrival_order(instance):
        idx = choose(bundles, job, g)
        if idx is None:
            bundles.append([job])
        else:
            bundles[idx].append(job)
    return BusyTimeSchedule.from_bundle_jobs(instance, g, bundles)


def online_first_fit(instance: Instance, g: int) -> BusyTimeSchedule:
    """Assign each arriving job to the first machine with room."""

    def choose(bundles: list[list[Job]], job: Job, g: int) -> int | None:
        for k, members in enumerate(bundles):
            if fits_in_bundle(members, job, g):
                return k
        return None

    return _run_online(instance, g, choose)


def online_best_fit(instance: Instance, g: int) -> BusyTimeSchedule:
    """Assign each arriving job minimizing the busy-time increase."""

    def choose(bundles: list[list[Job]], job: Job, g: int) -> int | None:
        best_k: int | None = None
        best_delta = job.length  # opening a new machine costs the full span
        for k, members in enumerate(bundles):
            if not fits_in_bundle(members, job, g):
                continue
            before = span(m.window for m in members)
            after = span([m.window for m in members] + [job.window])
            delta = after - before
            if delta < best_delta - 1e-12:
                best_delta = delta
                best_k = k
        return best_k

    return _run_online(instance, g, choose)


def nested_adversarial_instance(g: int, *, levels: int | None = None) -> Instance:
    """A nested clique family stressing early online commitments.

    Level ``l`` (outermost first) contributes ``g`` identical intervals, each
    nested strictly inside the previous level.  All levels share the central
    clique point, so every machine an online policy fills early is blocked
    for every later level; policies differ in how much span those early
    commitments waste.
    """
    require_capacity(g)
    depth = g if levels is None else levels
    jobs: list[Job] = []
    lo, hi = 0.0, float(2**depth)
    next_id = 0
    for level in range(depth):
        for _ in range(g):
            jobs.append(Job(lo, hi, hi - lo, id=next_id, label=f"L{level}"))
            next_id += 1
        quarter = (hi - lo) / 4
        lo, hi = lo + quarter, hi - quarter
    return Instance(tuple(jobs))
