"""Optional backend: the ``python-mip`` modeling library (CBC/HiGHS/Gurobi).

``mip`` is not a hard dependency — this module imports it lazily and the
backend reports itself unavailable when the package is missing, so the
registry can list it (greyed out) without ever raising at import time.
Install with ``pip install repro-changkm14[mip]``.

The adapter translates the sparse IR row-by-row into a ``mip.Model`` —
the same shape as python-mip's own HiGHS adapter builds its models —
and maps ``OptimizationStatus`` onto the shared status vocabulary.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

import numpy as np

from .base import SolverResult, validate_warm_start
from .ir import LinearProgram

__all__ = ["PythonMipBackend"]

try:  # soft dependency: absence is a capability fact, not an error
    import mip as _mip
except Exception:  # pragma: no cover - exercised only without the package
    _mip = None


class PythonMipBackend:
    """LP/MILP via the ``python-mip`` modeling layer (default CBC)."""

    name = "mip"

    def __init__(self, solver_name: str = "") -> None:
        #: Forwarded to ``mip.Model`` ("" lets mip pick CBC/Gurobi).
        self.solver_name = solver_name

    def capabilities(self) -> frozenset[str]:
        return frozenset({"lp", "milp", "warm-start"})

    def available(self) -> bool:
        return _mip is not None

    @staticmethod
    def unavailable_reason() -> str:
        """Human-readable install hint for menus and error messages."""
        return "python-mip is not installed (pip install 'mip>=1.14')"

    # ------------------------------------------------------------------
    def solve(
        self,
        lp: LinearProgram,
        *,
        time_limit: float | None = None,
        options: Mapping[str, Any] | None = None,
    ) -> SolverResult:
        if _mip is None:
            raise RuntimeError(
                f"backend {self.name!r} unavailable: "
                f"{self.unavailable_reason()}"
            )
        start = time.perf_counter()
        if lp.num_vars == 0:
            return SolverResult(
                status="optimal",
                backend=self.name,
                objective=0.0,
                x=np.zeros(0),
                elapsed=time.perf_counter() - start,
            )
        options = dict(options or {})
        model = _mip.Model(
            sense=_mip.MINIMIZE, solver_name=self.solver_name
        )
        model.verbose = 0

        lb, ub = lp.bounds_arrays()
        integrality = lp.integrality_array()
        variables = [
            model.add_var(
                lb=float(lb[i]),
                ub=float(ub[i]),
                var_type=(
                    _mip.INTEGER if integrality[i] > 0 else _mip.CONTINUOUS
                ),
                name=lp.names[i] if lp.names else f"x{i}",
            )
            for i in range(lp.num_vars)
        ]
        model.objective = _mip.xsum(
            float(coef) * variables[i]
            for i, coef in enumerate(lp.c)
            if coef != 0.0
        )
        self._add_rows(model, variables, lp.a_ub, lp.b_ub, equality=False)
        self._add_rows(model, variables, lp.a_eq, lp.b_eq, equality=True)

        # python-mip's warm-start hook: a (var, value) list seeds the
        # incumbent so branch-and-bound starts from a known solution.
        # A wrong-length vector would silently seed only a prefix (or
        # index past the variables) — validate before handing it over.
        warm = options.pop("warm_start", None)
        if warm is not None:
            warm = validate_warm_start(lp, warm)
            model.start = [
                (variables[i], float(v)) for i, v in enumerate(warm)
            ]
        kwargs = {}
        if time_limit is not None:
            kwargs["max_seconds"] = float(time_limit)
        status = model.optimize(**kwargs)
        elapsed = time.perf_counter() - start

        mapped = self._map_status(status, time_limit)
        if mapped != "optimal":
            return SolverResult(
                status=mapped,
                backend=self.name,
                message=f"python-mip status {status}",
                elapsed=elapsed,
            )
        x = np.array([float(v.x) for v in variables])
        return SolverResult(
            status="optimal",
            backend=self.name,
            objective=float(model.objective_value),
            x=x,
            elapsed=elapsed,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _add_rows(model, variables, a, b, *, equality: bool) -> None:
        if a is None:
            return
        indptr, indices, data = a.indptr, a.indices, a.data
        for row in range(a.shape[0]):
            lo, hi = indptr[row], indptr[row + 1]
            expr = _mip.xsum(
                float(data[k]) * variables[indices[k]] for k in range(lo, hi)
            )
            rhs = float(b[row])
            model.add_constr(expr == rhs if equality else expr <= rhs)

    @staticmethod
    def _map_status(status, time_limit) -> str:
        S = _mip.OptimizationStatus
        if status == S.OPTIMAL:
            return "optimal"
        if status in (S.INFEASIBLE, S.INT_INFEASIBLE):
            return "infeasible"
        if status == S.UNBOUNDED:
            return "unbounded"
        if status in (S.FEASIBLE, S.NO_SOLUTION_FOUND):
            # Feasible-but-not-proven within a budget is a timeout; the
            # same statuses without a budget indicate solver trouble.
            return "timeout" if time_limit is not None else "error"
        return "error"
