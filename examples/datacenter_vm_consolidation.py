#!/usr/bin/env python3
"""VM consolidation: the paper's cloud-computing motivation, end to end.

Scenario: a cluster receives batch-VM requests, each with an earliest start
(release), a latest finish (deadline) and a run length.  Every physical host
can run at most ``g`` VMs concurrently, hosts are plentiful (they can be
powered on on demand), and the electricity bill is proportional to the total
host-on time — precisely the busy-time model with flexible jobs.

The script:

1. generates a synthetic request trace with a day/night load pattern,
2. runs the Section-4.3 pipeline (pin starts at the unbounded-capacity
   optimum, then pack) under all four interval packers,
3. reports host-hours against the lower bounds, plus the naive
   one-VM-per-host baseline an operator would start from, and
4. shows what preemption/migration (Theorems 6-7) would save.

Run:  python examples/datacenter_vm_consolidation.py [seed]
"""

import sys

import numpy as np

from repro import Instance, Job
from repro.analysis import format_table
from repro.busytime import (
    greedy_unbounded_preemptive,
    mass_lower_bound,
    opt_infinity,
    preemptive_bounded,
    schedule_flexible,
)


def synth_trace(rng: np.random.Generator, n: int = 60, day: int = 24) -> Instance:
    """Batch-VM requests: short interactive jobs by day, long batch at night."""
    jobs = []
    for i in range(n):
        if rng.uniform() < 0.6:  # daytime interactive: short, tight window
            length = int(rng.integers(1, 3))
            release = int(rng.integers(6, 18))
            slack = int(rng.integers(0, 3))
        else:  # nightly batch: long, loose window
            length = int(rng.integers(3, 8))
            release = int(rng.integers(0, 6))
            slack = int(rng.integers(2, 10))
        deadline = min(release + length + slack, day + 8)
        length = min(length, deadline - release)
        jobs.append(Job(release, deadline, length, id=i))
    return Instance(tuple(jobs))


def main(seed: int = 7) -> None:
    rng = np.random.default_rng(seed)
    g = 4  # VMs per host
    trace = synth_trace(rng)
    print(f"trace: {trace.describe()}, hosts run up to g={g} VMs\n")

    placement = opt_infinity(trace)
    mass = mass_lower_bound(trace, g)
    lower = max(placement.busy_time, mass)

    # Naive operator baseline: one VM per host, started at release.
    naive = trace.total_length

    rows = [
        ["one VM per host (naive)", naive, naive / lower],
    ]
    for name in ("first_fit", "greedy_tracking", "chain_peeling", "kumar_rudra"):
        s = schedule_flexible(trace, g, algorithm=name)
        s.verify()
        rows.append([f"pipeline + {name}", s.total_busy_time,
                     s.total_busy_time / lower])

    print(
        format_table(
            "Host-on hours by consolidation policy",
            ["policy", "host-hours", "vs lower bound"],
            rows,
        )
    )
    print(f"\nlower bounds: OPT_inf = {placement.busy_time:.1f} h, "
          f"mass/g = {mass:.1f} h")

    # What would live migration buy us?  The preemptive model allows VMs to
    # pause and move between hosts.
    pre_inf = greedy_unbounded_preemptive(trace)
    pre_g = preemptive_bounded(trace, g)
    best_nonpreemptive = min(r[1] for r in rows[1:])
    print(
        format_table(
            "\nWith pause/migrate (preemptive model)",
            ["policy", "host-hours"],
            [
                ["preemptive, unbounded hosts (exact, Thm 6)",
                 pre_inf.total_busy_time],
                [f"preemptive, g={g} (2-approx, Thm 7)",
                 pre_g.total_busy_time],
                ["best non-preemptive policy above", best_nonpreemptive],
            ],
        )
    )
    saved = 100 * (1 - best_nonpreemptive / naive)
    print(f"\nconsolidation saves {saved:.0f}% of host-hours vs the naive policy")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
