"""E8 — Lemma 7 / Figure 9: the DP's demand profile vs the optimal profile.

Paper claims: converting flexible jobs by span-minimizing placement can
double the demand profile (Lemma 7 upper bound; Figure 9 shows it is tight):
the gadget's DP placement has profile 2g - 1 + O(eps) against the optimal
placement's g + O(eps) — ratio -> 2 as g grows.
"""

import pytest

from repro.busytime import compute_demand_profile, pin_instance
from repro.instances import figure9


def test_fig9_profile_sweep(emit):
    rows = []
    eps = 0.001
    for g in (2, 3, 4, 6, 8):
        gad = figure9(g, eps=eps)
        adv = pin_instance(gad.instance, gad.witness["adversarial_starts"])
        opt = pin_instance(gad.instance, gad.witness["optimal_starts"])
        dp_cost = compute_demand_profile(adv, g).cost
        opt_cost = compute_demand_profile(opt, g).cost
        rows.append(
            [g, opt_cost, dp_cost, dp_cost / opt_cost,
             (2 * g - 1) / g]
        )
        assert dp_cost == pytest.approx(gad.facts["dp_profile"], abs=1e-6)
        assert opt_cost == pytest.approx(
            gad.facts["optimal_profile"], abs=1e-6
        )
        # Lemma 7: at most a factor 2
        assert dp_cost <= 2 * opt_cost + 1e-9
    emit(
        "E8 / Figure 9 — DP profile vs optimal profile (paper: -> 2)",
        ["g", "optimal profile", "DP profile", "measured ratio",
         "paper formula (2g-1)/g"],
        rows,
    )
    ratios = [r[3] for r in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 1.8


def test_both_placements_span_minimal():
    """Both placements achieve the same span (the DP's objective): the
    adversarial output is a *legitimate* DP answer, as the paper argues."""
    from repro.core import span

    for g in (2, 4):
        gad = figure9(g, eps=0.001)
        adv = pin_instance(gad.instance, gad.witness["adversarial_starts"])
        opt = pin_instance(gad.instance, gad.witness["optimal_starts"])
        adv_span = span(j.window for j in adv.jobs)
        opt_span = span(j.window for j in opt.jobs)
        assert adv_span <= opt_span + 1e-9


@pytest.mark.parametrize("g", [4, 8])
def test_profile_computation_runtime(benchmark, g):
    gad = figure9(g, eps=0.001)
    adv = pin_instance(gad.instance, gad.witness["adversarial_starts"])
    profile = benchmark(compute_demand_profile, adv, g)
    assert profile.cost > 0
