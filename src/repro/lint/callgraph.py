"""Lightweight name-level call-graph helpers shared by rules.

This is deliberately *approximate*: functions are keyed by bare name
across the whole scanned tree, and a call edge is recorded for
``f(...)``, ``self.f(...)`` and ``mod.f(...)`` alike whenever some
scanned function is named ``f``.  Over-approximation errs on the side
of scanning more functions (a false extra finding can be waived with a
reason); building a sound type-resolved graph is out of scope for a
stdlib linter.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

__all__ = [
    "called_names",
    "function_table",
    "reachable_names",
    "worker_entry_names",
    "worker_path_names",
]

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def function_table(
    trees: Iterable[ast.AST],
) -> Dict[str, List[ast.AST]]:
    """Every function/method definition in ``trees``, keyed by bare name."""
    table: Dict[str, List[ast.AST]] = {}
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, _FuncDef):
                table.setdefault(node.name, []).append(node)
    return table


def called_names(func: ast.AST) -> Set[str]:
    """Bare names of everything ``func`` calls (``f()``, ``x.f()``)."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def reachable_names(
    table: Dict[str, List[ast.AST]], entries: Iterable[str]
) -> Set[str]:
    """Function names transitively callable from ``entries``.

    Only names that actually exist in ``table`` propagate, so stdlib
    attribute calls (``json.dumps`` → ``dumps``) never pull unrelated
    code into the reachable set unless the project defines a function
    of the same name.
    """
    seen: Set[str] = set()
    frontier = [name for name in entries if name in table]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        for func in table[name]:
            for callee in called_names(func):
                if callee in table and callee not in seen:
                    frontier.append(callee)
    return seen


def _callable_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def worker_entry_names(trees: Iterable[ast.AST]) -> Set[str]:
    """Names of functions handed to threads, processes or process pools.

    Detected shapes: ``Thread(target=f)`` / ``Process(target=f)`` (also
    ``self.f`` / ``mod.f`` targets), and ``<pool>.submit(f, ...)`` /
    ``<pool>.apply_async(f, ...)``.  These functions — and everything
    they call — run far from the main thread's exception surface, which
    is what makes swallowed ``KeyboardInterrupt``/``CancelledError``
    there so expensive (see REP002).
    """
    entries: Set[str] = set()
    for tree in trees:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg == "target":
                    name = _callable_name(kw.value)
                    if name:
                        entries.add(name)
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("submit", "apply_async")
                and node.args
            ):
                name = _callable_name(node.args[0])
                if name:
                    entries.add(name)
    return entries


def worker_path_names(trees: Iterable[ast.AST]) -> Set[str]:
    """Names of every function on a worker path, tree-wide.

    A function is on a worker path when its bare name is a worker entry
    anywhere in the tree, or it is (transitively, by name) called from
    one.
    """
    tree_list = list(trees)
    table = function_table(tree_list)
    return reachable_names(table, worker_entry_names(tree_list))
