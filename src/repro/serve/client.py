"""Thin urllib client for a ``repro serve`` endpoint.

Lets sweeps and scripts target a remote server with the same
vocabulary the in-process engine uses: requests are built from
:class:`~repro.core.jobs.Instance` objects, responses come back as
:class:`~repro.engine.workers.TaskResult` records.  Standard library
only, mirroring the server.
"""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.request
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Mapping

from ..core.jobs import Instance
from ..engine.workers import TaskResult
from ..io import instance_to_payload

__all__ = ["ServeClientError", "ServeClient", "task_request"]


class ServeClientError(RuntimeError):
    """An error talking to the server.

    ``status`` carries the HTTP status for error *answers*; transport
    failures that never produced an HTTP response (connection refused,
    DNS, socket timeout) use ``status=0``.
    """

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


def task_request(
    instance: Instance,
    problem: str,
    g: int,
    *,
    algorithm: str | None = None,
    params: Mapping[str, Any] | None = None,
    backend: str | None = None,
    timeout: float | None = None,
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """One wire-format task object for ``POST /solve`` or ``POST /batch``."""
    payload: dict[str, Any] = {
        "instance": instance_to_payload(instance),
        "problem": problem,
        "g": g,
    }
    if algorithm is not None:
        payload["algorithm"] = algorithm
    if params:
        payload["params"] = dict(params)
    if backend is not None:
        payload["backend"] = backend
    if timeout is not None:
        payload["timeout"] = timeout
    if meta:
        payload["meta"] = dict(meta)
    return payload


class ServeClient:
    """Talk to one ``repro serve`` endpoint.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8977"`` (trailing slash tolerated).
    http_timeout:
        Socket timeout per request, in seconds.  Batches stream, so
        this bounds silence between lines rather than total runtime.
    """

    def __init__(self, base_url: str, *, http_timeout: float = 300.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.http_timeout = http_timeout

    # ------------------------------------------------------------------
    def _open(self, method: str, path: str, body: bytes | None = None):
        url = self.base_url + path
        request = urllib.request.Request(
            url,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            return urllib.request.urlopen(request, timeout=self.http_timeout)
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(detail)["error"]
            except (json.JSONDecodeError, KeyError, TypeError):
                message = detail.strip() or exc.reason
            raise ServeClientError(message, exc.code) from None
        except urllib.error.URLError as exc:
            # Transport failure (connection refused, DNS, socket
            # timeout): no HTTP response to report, so wrap the raw
            # reason with the target so the caller knows *what* was
            # unreachable instead of getting a bare URLError traceback.
            raise ServeClientError(
                f"cannot reach {url}: {exc.reason}", status=0
            ) from None

    @contextmanager
    def _reading(self, path: str):
        """Wrap response-body reads so mid-stream transport failures
        (socket timeout between chunks, dropped connection, truncated
        chunked encoding) surface as :class:`ServeClientError` too —
        callers handle one exception type end to end."""
        try:
            yield
        except (TimeoutError, OSError, http.client.HTTPException) as exc:
            raise ServeClientError(
                f"connection to {self.base_url + path} failed mid-read: "
                f"{type(exc).__name__}: {exc}",
                status=0,
            ) from None

    def _get_json(self, path: str) -> dict[str, Any]:
        with self._open("GET", path) as response, self._reading(path):
            return json.loads(response.read())

    # ------------------------------------------------------------------
    def algos(self) -> dict[str, Any]:
        """The server's solver and backend registries (``GET /algos``)."""
        return self._get_json("/algos")

    def health(self) -> dict[str, Any]:
        """Liveness and cache statistics (``GET /healthz``)."""
        return self._get_json("/healthz")

    def stats(self) -> dict[str, Any]:
        """The server's metrics digest as JSON (``GET /stats``)."""
        return self._get_json("/stats")

    def metrics(self) -> str:
        """The raw Prometheus exposition text (``GET /metrics``)."""
        with self._open("GET", "/metrics") as response, \
                self._reading("/metrics"):
            return response.read().decode("utf-8")

    def solve(
        self,
        instance: Instance,
        problem: str,
        g: int,
        *,
        algorithm: str | None = None,
        params: Mapping[str, Any] | None = None,
        backend: str | None = None,
        timeout: float | None = None,
        meta: Mapping[str, Any] | None = None,
    ) -> TaskResult:
        """Solve one instance remotely (``POST /solve``)."""
        body = json.dumps(
            task_request(
                instance,
                problem,
                g,
                algorithm=algorithm,
                params=params,
                backend=backend,
                timeout=timeout,
                meta=meta,
            )
        ).encode("utf-8")
        with self._open("POST", "/solve", body) as response, \
                self._reading("/solve"):
            return TaskResult.from_record(json.loads(response.read()))

    def batch(
        self, requests: Iterable[Mapping[str, Any]]
    ) -> Iterator[TaskResult]:
        """Stream a batch (``POST /batch``), yielding results in task order.

        ``requests`` are wire-format task objects (see
        :func:`task_request`); results are yielded as lines arrive, so
        early waves can be consumed while the server is still solving.
        """
        body = "".join(
            json.dumps(dict(request)) + "\n" for request in requests
        ).encode("utf-8")
        with self._open("POST", "/batch", body) as response, \
                self._reading("/batch"):
            for line in response:
                line = line.strip()
                if line:
                    yield TaskResult.from_record(json.loads(line))
