"""Tests for track extraction (weighted interval scheduling)."""

import pytest

from repro.busytime import is_track, longest_track, track_length
from repro.core import Instance, Job
from repro.instances import random_interval_instance


class TestIsTrack:
    def test_disjoint(self):
        assert is_track([Job(0, 1, 1, id=0), Job(2, 3, 1, id=1)])

    def test_touching_counts_as_disjoint(self):
        assert is_track([Job(0, 1, 1, id=0), Job(1, 2, 1, id=1)])

    def test_overlap_rejected(self):
        assert not is_track([Job(0, 2, 2, id=0), Job(1, 3, 2, id=1)])

    def test_empty(self):
        assert is_track([])


class TestLongestTrack:
    def test_empty(self):
        assert longest_track([]) == []

    def test_single(self):
        jobs = [Job(0, 3, 3, id=0)]
        assert longest_track(jobs) == jobs

    def test_prefers_total_length_over_count(self):
        long_job = Job(0, 10, 10, id=0)
        shorts = [Job(i * 2, i * 2 + 1, 1, id=1 + i) for i in range(5)]
        track = longest_track([long_job] + shorts)
        assert track == [long_job]

    def test_picks_compatible_combination(self):
        a = Job(0, 3, 3, id=0)
        b = Job(3, 6, 3, id=1)
        c = Job(2, 4, 2, id=2)  # conflicts with both
        track = longest_track([a, b, c])
        assert {j.id for j in track} == {0, 1}
        assert track_length(track) == 6

    def test_touching_jobs_chainable(self):
        jobs = [Job(i, i + 1, 1, id=i) for i in range(5)]
        track = longest_track(jobs)
        assert len(track) == 5

    def test_output_sorted_by_start(self, rng):
        for _ in range(10):
            inst = random_interval_instance(10, 20.0, rng=rng)
            track = longest_track(list(inst.jobs))
            starts = [j.release for j in track]
            assert starts == sorted(starts)
            assert is_track(track)

    def test_rejects_flexible_jobs(self):
        with pytest.raises(ValueError, match="flexible"):
            longest_track([Job(0, 5, 2, id=0)])

    def test_optimal_against_brute_force(self, rng):
        import itertools

        for _ in range(10):
            inst = random_interval_instance(7, 10.0, rng=rng)
            jobs = list(inst.jobs)
            best = 0.0
            for r in range(1, len(jobs) + 1):
                for combo in itertools.combinations(jobs, r):
                    if is_track(combo):
                        best = max(best, track_length(combo))
            track = longest_track(jobs)
            assert track_length(track) == pytest.approx(best)

    def test_identical_jobs_take_one(self):
        jobs = [Job(0, 2, 2, id=i) for i in range(4)]
        track = longest_track(jobs)
        assert len(track) == 1
