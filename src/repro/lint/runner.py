"""Walk paths, run the registered rules, apply waivers, collect findings."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence

from . import rules as _rules  # noqa: F401  (registers the rule set)
from .base import META_RULE_ID, Finding, ModuleContext, Rule, RULES, TreeContext

__all__ = ["LintReport", "collect_files", "lint_paths"]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    waived: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> dict:
        return {
            "version": 1,
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules_run": list(self.rules_run),
            "findings": [f.to_json() for f in self.findings],
            "waived": [f.to_json() for f in self.waived],
        }


def collect_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Python files under ``paths`` (files kept as-is), sorted, deduped."""
    seen = set()
    out: List[Path] = []
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path] if path.suffix == ".py" else []
        elif path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (set(p.parts) & _SKIP_DIRS)
            )
        else:
            raise FileNotFoundError(f"lint path does not exist: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return iter(out)


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _meta_findings(module: ModuleContext) -> Iterator[Finding]:
    """Waiver hygiene: malformed IDs and missing reasons are findings.

    ``REP000`` findings cannot themselves be waived — a suppression
    that cannot explain itself is exactly what this rule exists for.
    """
    for waiver in module.waivers.values():
        for bad in waiver.malformed:
            yield module.finding(
                META_RULE_ID, waiver.line,
                f"waiver names unknown rule id {bad!r} "
                f"(expected REP###)",
            )
        if not waiver.reason:
            spelling = "# blocking-ok" if waiver.legacy else "# lint: waive"
            yield module.finding(
                META_RULE_ID, waiver.line,
                f"waiver ({spelling}) carries no reason; write why the "
                "finding is acceptable after the waiver",
            )
        unknown = sorted(i for i in waiver.ids if i not in RULES)
        for rule_id in unknown:
            yield module.finding(
                META_RULE_ID, waiver.line,
                f"waiver names unregistered rule {rule_id}",
            )


def lint_paths(
    paths: Sequence[Path | str],
    *,
    rule_ids: Sequence[str] | None = None,
    root: Path | str | None = None,
) -> LintReport:
    """Lint ``paths`` with the selected rules (all, by default).

    ``root`` anchors relative paths in findings and is where
    cross-module rules look for tree-level artifacts (the README
    metrics catalog); it defaults to the current directory.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    if rule_ids is None:
        selected: List[Rule] = list(RULES.values())
    else:
        unknown = sorted(set(rule_ids) - set(RULES))
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {unknown}; registered: {sorted(RULES)}"
            )
        selected = [RULES[i] for i in rule_ids]

    report = LintReport(rules_run=sorted(r.id for r in selected))
    modules: List[ModuleContext] = []
    raw: List[Finding] = []
    for file_path in collect_files([Path(p) for p in paths]):
        rel = _relative(file_path, root_path)
        try:
            source = file_path.read_text(encoding="utf-8")
            module = ModuleContext(file_path, rel, source)
        except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
            lineno = getattr(exc, "lineno", 0) or 0
            raw.append(Finding(
                path=rel, line=lineno, rule=META_RULE_ID,
                message=f"cannot parse module: {exc}",
            ))
            continue
        modules.append(module)
        raw.extend(_meta_findings(module))
    report.files_scanned = len(modules)

    for rule in selected:
        for module in modules:
            raw.extend(rule.check_module(module))
    tree = TreeContext(root_path, modules)
    for rule in selected:
        raw.extend(rule.check_tree(tree))

    by_rel: Dict[str, ModuleContext] = {m.rel: m for m in modules}
    for finding in sorted(set(raw)):
        module = by_rel.get(finding.path)
        waiver = (
            module.waivers.get(finding.line) if module is not None else None
        )
        if (
            finding.rule != META_RULE_ID
            and waiver is not None
            and waiver.covers(finding.rule)
        ):
            report.waived.append(finding)
        else:
            report.findings.append(finding)
    return report
