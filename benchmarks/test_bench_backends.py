"""E-BACKENDS — solver-backend routing: latency and parity across backends.

The backend-neutral solver layer must not regress the hot path: the
``scipy-highs`` backend is the production default, and ``reference`` (the
dependency-free dense simplex) exists for tiny instances and CI
cross-checks.  This bench measures per-solve latency of both on the
``LP1`` relaxation and the exact MILP across instance sizes, so BENCH
trajectories catch routing regressions (e.g. an IR translation step
suddenly dominating solve time), and asserts objective parity — the
correctness claim behind capability routing.
"""

from __future__ import annotations

import time

import numpy as np

from repro.instances import random_active_time_instance
from repro.lp import solve_active_time_exact, solve_active_time_lp
from repro.lp.model import build_active_time_model
from repro.solvers import available_backend_names

#: (n jobs, horizon T, capacity g) — sized for the dense reference backend.
LP_SIZES = [(4, 6, 2), (8, 10, 3), (12, 14, 3), (16, 18, 4)]
MILP_SIZES = [(4, 6, 2), (6, 8, 3), (8, 10, 3)]


def _feasible_instance(n, T, g, rng):
    for _ in range(50):
        inst = random_active_time_instance(n, T, rng=rng)
        try:
            solve_active_time_lp(inst, g)
        except RuntimeError:
            continue
        return inst
    raise RuntimeError(f"no feasible instance found for n={n}, T={T}, g={g}")


def _time_solve(fn, repeats=3):
    best = np.inf
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_lp_latency_and_parity_across_backends(rng, emit):
    backends = [b for b in available_backend_names() if b != "mip"]
    rows = []
    for n, T, g in LP_SIZES:
        inst = _feasible_instance(n, T, g, rng)
        model = build_active_time_model(inst, g)
        timings = {}
        objectives = {}
        for backend in backends:
            sec, sol = _time_solve(
                lambda b=backend: solve_active_time_lp(
                    inst, g, model=model, backend=b
                )
            )
            timings[backend] = sec
            objectives[backend] = sol.objective
        spread = max(objectives.values()) - min(objectives.values())
        assert spread <= 1e-6, objectives
        rows.append(
            [
                f"n={n}, T={T}, g={g}",
                model.num_vars,
                *(f"{timings[b] * 1e3:.2f}" for b in backends),
                f"{timings['reference'] / timings['scipy-highs']:.1f}x",
            ]
        )
    emit(
        "E-BACKENDS / LP1 per-solve latency (ms, best of 3)",
        ["family", "vars", *backends, "ref/scipy"],
        rows,
    )


def test_milp_latency_and_parity_across_backends(rng, emit):
    backends = [b for b in available_backend_names() if b != "mip"]
    rows = []
    for n, T, g in MILP_SIZES:
        inst = _feasible_instance(n, T, g, rng)
        timings = {}
        objectives = {}
        for backend in backends:
            sec, result = _time_solve(
                lambda b=backend: solve_active_time_exact(inst, g, backend=b)
            )
            timings[backend] = sec
            objectives[backend] = result.objective
        spread = max(objectives.values()) - min(objectives.values())
        assert spread <= 1e-6, objectives
        rows.append(
            [
                f"n={n}, T={T}, g={g}",
                *(f"{timings[b] * 1e3:.2f}" for b in backends),
            ]
        )
    emit(
        "E-BACKENDS / exact MILP per-solve latency (ms, best of 3)",
        ["family", *backends],
        rows,
    )
