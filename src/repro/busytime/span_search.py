"""Combinatorial exact search for the unbounded-capacity placement.

:func:`repro.lp.milp.solve_unbounded_span_exact` computes ``OPT_inf`` through
HiGHS.  This module provides an *independent, solver-free* exact algorithm —
a memoized branch-and-bound over maximal busy blocks — so the two can
cross-validate each other (the tests require agreement on thousands of
instances) and so the library works where one distrusts the MILP layer.

Structure (for integral instances): an optimal solution's busy time is a
union of disjoint maximal blocks ``[a, b)`` with integer endpoints; a job
``j`` can be served by block ``[a, b)`` iff ``max(a, r_j) + p_j <= min(b,
d_j)``.  Searching left to right over blocks with memoization on
``(frontier, uncovered-job-set)`` gives an exact algorithm exponential only
in ``n`` (fine at cross-validation sizes); dominance pruning keeps typical
cases small:

* the next block must start by the minimum latest-start among uncovered jobs
  (else that job dies);
* block ends beyond the maximum relevant deadline are never useful;
* a running upper bound (from the earliest-fit heuristic) prunes branches.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.jobs import Instance, Job
from ..core.validation import require_integral

__all__ = ["span_search_exact", "earliest_fit_span"]


def _fits(job: Job, a: int, b: int) -> bool:
    """Can ``job`` run inside the block ``[a, b)``?"""
    r, d = job.integral_window()
    p = job.integral_length()
    return max(a, r) + p <= min(b, d)


def earliest_fit_span(instance: Instance) -> tuple[float, dict[int, float]]:
    """Upper-bound heuristic: schedule every job as early as possible.

    Returns ``(span, starts)``; the span upper-bounds ``OPT_inf`` and seeds
    the branch-and-bound.
    """
    require_integral(instance, "earliest fit")
    starts = {j.id: float(j.release) for j in instance.jobs}
    from ..core.intervals import span as _span

    value = _span(
        (s, s + instance.job_by_id(jid).length) for jid, s in starts.items()
    )
    return value, starts


def span_search_exact(
    instance: Instance, *, max_jobs: int = 14
) -> tuple[float, dict[int, float]]:
    """Exact ``OPT_inf`` via memoized block search (integral instances).

    Returns ``(optimal span, starts)``.  Guarded by ``max_jobs`` because the
    memo key contains the uncovered-job set.

    Raises ``ValueError`` beyond the guard or for non-integral data.
    """
    require_integral(instance, "span search")
    n = instance.n
    if n == 0:
        return 0.0, {}
    if n > max_jobs:
        raise ValueError(
            f"span search limited to {max_jobs} jobs, instance has {n}"
        )

    jobs = list(instance.jobs)
    T = instance.horizon
    upper, _ = earliest_fit_span(instance)

    @lru_cache(maxsize=None)
    def solve(frontier: int, uncovered: frozenset[int]) -> float:
        """Min total block length covering ``uncovered`` with blocks in
        ``[frontier, T]``."""
        if not uncovered:
            return 0.0
        # the next block must start no later than the tightest latest start
        latest_starts = [
            jobs[k].integral_window()[1] - jobs[k].integral_length()
            for k in uncovered
        ]
        a_max = min(latest_starts)
        if a_max < frontier:
            return float("inf")
        best = float("inf")
        # candidate starts: every integer in range (pseudo-polynomial but
        # unconditionally exact; instances at cross-validation sizes keep
        # this cheap)
        for a in range(a_max, frontier - 1, -1):
            # grow the block endpoint; each growth step changes the covered
            # set, so only endpoints where some job's feasibility flips
            # matter: b in {max(a, r_j) + p_j} and {d_j}
            ends = sorted(
                {
                    min(
                        max(a, jobs[k].integral_window()[0])
                        + jobs[k].integral_length(),
                        T,
                    )
                    for k in uncovered
                }
                | {jobs[k].integral_window()[1] for k in uncovered}
            )
            for b in ends:
                if b <= a:
                    continue
                cost = float(b - a)
                if cost >= best:
                    break  # ends sorted ascending; later ends cost more
                covered = frozenset(
                    k for k in uncovered if _fits(jobs[k], a, b)
                )
                if not covered:
                    continue
                rest = solve(b, uncovered - covered)
                if cost + rest < best:
                    best = cost + rest
        return best

    all_jobs = frozenset(range(n))
    value = solve(0, all_jobs)
    if value > upper + 1e-9:  # pragma: no cover - earliest fit is feasible
        value = upper

    # Reconstruct starts by replaying the DP decisions.
    starts: dict[int, float] = {}
    frontier, uncovered = 0, all_jobs
    while uncovered:
        target = solve(frontier, uncovered)
        found = False
        latest_starts = [
            jobs[k].integral_window()[1] - jobs[k].integral_length()
            for k in uncovered
        ]
        a_max = min(latest_starts)
        for a in range(frontier, a_max + 1):
            ends = sorted(
                {
                    min(
                        max(a, jobs[k].integral_window()[0])
                        + jobs[k].integral_length(),
                        T,
                    )
                    for k in uncovered
                }
                | {jobs[k].integral_window()[1] for k in uncovered}
            )
            for b in ends:
                if b <= a:
                    continue
                covered = frozenset(
                    k for k in uncovered if _fits(jobs[k], a, b)
                )
                if not covered:
                    continue
                rest = solve(b, uncovered - covered)
                if abs((b - a) + rest - target) < 1e-9:
                    for k in covered:
                        job = jobs[k]
                        r, d = job.integral_window()
                        starts[job.id] = float(
                            min(max(a, r), d - job.integral_length())
                        )
                    frontier, uncovered = b, uncovered - covered
                    found = True
                    break
            if found:
                break
        if not found:  # pragma: no cover - defensive
            raise RuntimeError("failed to reconstruct an optimal block chain")
    return value, starts
