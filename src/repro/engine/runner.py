"""`BatchRunner` — shard a stream of solve tasks across a worker pool.

Design points:

* **Deterministic ordering** — results come back in task order no
  matter which worker finished first, so parallel and serial runs of
  the same task list produce identical records (modulo timings).
* **Cache first** — tasks whose content digest is already in the
  :class:`~repro.engine.cache.ResultCache` never reach the pool.
* **Graceful failure** — a solver error becomes a ``TaskResult`` with
  ``ok=False`` (annotated with digest and seed by the worker); it never
  kills the batch.
* **Clean interrupt** — ``KeyboardInterrupt`` cancels outstanding
  futures and shuts the pool down without waiting, so Ctrl-C leaves no
  orphaned workers behind.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Sequence

from .cache import ResultCache
from .workers import Task, TaskResult, execute_task

__all__ = ["BatchRunner"]


class BatchRunner:
    """Run many solve tasks, optionally in parallel, with caching.

    Parameters
    ----------
    jobs:
        Worker-process count; ``1`` runs everything in-process (useful
        for debugging and required for solvers registered only in the
        current process).
    cache:
        Optional result cache consulted before dispatch and updated
        with every successful result.
    """

    def __init__(self, jobs: int = 1, cache: ResultCache | None = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        #: Number of cache hits in the most recent :meth:`run`.
        self.last_cache_hits = 0

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Task]) -> list[TaskResult]:
        """Execute ``tasks`` and return results in task order.

        Tasks sharing a content digest are solved once per run: the
        first occurrence executes, later ones reuse its result (marked
        ``cached``) even when no :class:`ResultCache` is configured.
        """
        results: list[TaskResult | None] = [None] * len(tasks)
        pending: list[Task] = []
        pending_pos: list[int] = []
        first_by_digest: dict[str, int] = {}
        dup_of: dict[int, int] = {}
        self.last_cache_hits = 0

        for pos, task in enumerate(tasks):
            hit = self._cache_lookup(task)
            if hit is not None:
                results[pos] = hit
                self.last_cache_hits += 1
                continue
            first = first_by_digest.get(task.digest)
            if first is not None:
                dup_of[pos] = first
                continue
            first_by_digest[task.digest] = pos
            pending.append(task)
            pending_pos.append(pos)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                executed = [execute_task(t) for t in pending]
            else:
                executed = self._run_parallel(pending)
            for pos, result in zip(pending_pos, executed):
                results[pos] = result
                self._cache_store(result)

        for pos, first in dup_of.items():
            source = results[first]
            if source is not None and source.ok:
                results[pos] = self._reanchor(source, tasks[pos])
                self.last_cache_hits += 1
            else:
                # Mirrors _cache_store's policy: failures (timeouts,
                # transient errors) are retried, never reused.
                results[pos] = execute_task(tasks[pos])
                self._cache_store(results[pos])

        return [r for r in results if r is not None]

    # ------------------------------------------------------------------
    def _run_parallel(self, pending: Sequence[Task]) -> list[TaskResult]:
        """Fan pending tasks out to a process pool, preserving order."""
        executor = ProcessPoolExecutor(max_workers=self.jobs)
        futures: dict = {}
        try:
            futures = {
                executor.submit(execute_task, task): i
                for i, task in enumerate(pending)
            }
            executed: list[TaskResult | None] = [None] * len(pending)
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    executed[futures[future]] = future.result()
        except KeyboardInterrupt:
            for future in futures:
                future.cancel()
            # shutdown(wait=False) lets in-flight tasks run to completion,
            # which can leave workers grinding long after Ctrl-C — kill
            # them outright so nothing is orphaned.
            processes = list(getattr(executor, "_processes", {}).values())
            executor.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                process.terminate()
            for process in processes:
                process.join(timeout=1.0)
            raise
        except BaseException:
            # e.g. BrokenProcessPool from an OOM-killed worker: still
            # release the pool before propagating.
            executor.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            executor.shutdown(wait=True)
        return [r for r in executed if r is not None]

    # ------------------------------------------------------------------
    def _cache_lookup(self, task: Task) -> TaskResult | None:
        if self.cache is None:
            return None
        record = self.cache.get(task.digest)
        if record is None:
            return None
        return self._reanchor(TaskResult.from_record(record), task)

    @staticmethod
    def _reanchor(result: TaskResult, task: Task) -> TaskResult:
        """A reused result re-anchored to this task's position/provenance."""
        return TaskResult(
            index=task.index,
            digest=result.digest,
            problem=result.problem,
            algorithm=result.algorithm,
            g=result.g,
            n=result.n,
            ok=result.ok,
            objective=result.objective,
            metrics=result.metrics,
            error=result.error,
            elapsed=result.elapsed,
            cached=True,
            meta=task.meta or result.meta,
        )

    def _cache_store(self, result: TaskResult) -> None:
        # Failures are not cached: a timeout or transient error should be
        # retried on the next run rather than pinned forever.
        if self.cache is not None and result.ok:
            self.cache.put(result.digest, result.to_record())
