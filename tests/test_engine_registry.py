"""Tests for the solver registry (repro.engine.registry)."""

import pytest

from repro.busytime import INTERVAL_ALGORITHMS
from repro.engine import (
    REGISTRY,
    SolveOutcome,
    SolverRegistry,
    SolverSpec,
    get_solver,
    solve,
)


class TestCompleteness:
    def test_every_active_algorithm_registered(self):
        assert REGISTRY.names("active") == ("exact", "minimal", "rounding", "unit")

    def test_every_interval_algorithm_registered(self):
        expected = tuple(sorted(set(INTERVAL_ALGORITHMS) | {"exact"}))
        assert REGISTRY.names("busy") == expected

    def test_specs_have_metadata(self):
        for spec in REGISTRY.specs():
            assert spec.guarantee
            assert spec.complexity
            assert spec.description
            assert spec.problem in ("active", "busy")

    def test_exact_flags(self):
        assert REGISTRY.get("active", "exact").exact
        assert REGISTRY.get("busy", "exact").exact
        assert not REGISTRY.get("active", "rounding").exact
        assert not REGISTRY.get("busy", "greedy_tracking").exact


class TestDispatch:
    def test_active_matches_direct_call(self, tiny_instance):
        from repro.activetime import minimal_feasible_schedule

        outcome = solve("active", "minimal", tiny_instance, 2)
        direct = minimal_feasible_schedule(tiny_instance, 2)
        assert outcome.objective == pytest.approx(direct.cost)
        assert outcome.schedule is not None
        assert outcome.metrics["lower_bound"] > 0

    def test_busy_matches_direct_call(self, interval_instance):
        from repro.busytime import schedule_flexible

        outcome = solve("busy", "greedy_tracking", interval_instance, 2)
        direct = schedule_flexible(
            interval_instance, 2, algorithm="greedy_tracking"
        )
        assert outcome.objective == pytest.approx(direct.total_busy_time)
        assert outcome.metrics["num_machines"] == direct.num_machines

    def test_busy_flexible_instance_gets_mass_bound(self, tiny_instance):
        # Flexible jobs: the span/profile bounds would raise, so the
        # metric must fall back to the mass bound without erroring.
        outcome = solve("busy", "greedy_tracking", tiny_instance, 2)
        assert outcome.metrics["lower_bound"] == pytest.approx(
            tiny_instance.total_length / 2
        )

    def test_unknown_solver_raises_with_menu(self, tiny_instance):
        with pytest.raises(KeyError, match="registered"):
            get_solver("active", "does_not_exist")

    def test_unknown_problem_rejected_on_register(self):
        registry = SolverRegistry()
        spec = SolverSpec(
            problem="bogus",
            name="x",
            solve=lambda i, g: SolveOutcome(objective=0.0),
            exact=False,
            guarantee="-",
            complexity="-",
            description="-",
        )
        with pytest.raises(ValueError, match="unknown problem"):
            registry.register(spec)

    def test_duplicate_registration_rejected(self):
        registry = SolverRegistry()
        spec = SolverSpec(
            problem="active",
            name="x",
            solve=lambda i, g: SolveOutcome(objective=0.0),
            exact=False,
            guarantee="-",
            complexity="-",
            description="-",
        )
        registry.register(spec)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(spec)
