"""Tests for the watchdog pool lifecycle: warm-up, idle-TTL reaping,
and the two-level priority lease queue.

The pool itself (persistence, recovery) is covered by
``test_engine_stream.py``; here we exercise the serving-tier additions:
``BatchRunner.warm_up``, ``idle_ttl`` reaping, and urgent
(:data:`~repro.engine.PRIORITY_URGENT`) acquires jumping the bulk lease
queue.
"""

import multiprocessing
import threading
import time

import pytest

from repro.core import Instance
from repro.engine import BatchRunner, PRIORITY_URGENT, make_task
from repro.engine.registry import REGISTRY, SolveOutcome, SolverSpec
from repro.obs import REGISTRY as OBS

_FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="test registers a solver that only fork-children inherit",
)


def _tasks(instances, problem="active", algorithm="minimal", g=2, **kw):
    return [
        make_task(
            index=i, problem=problem, algorithm=algorithm, g=g,
            instance=inst, **kw
        )
        for i, inst in enumerate(instances)
    ]


def _instances(count, seed=0):
    """Distinct small instances (solver cost grows with the horizon, so
    distinctness comes from modular offsets, not growing coordinates)."""
    return [
        Instance.from_tuples([
            (0, 4 + (seed + i) % 7, 2),
            (1, 9 + (seed + i) % 11, 3),
            (2, 6 + (seed + i) % 5, 1),
        ])
        for i in range(count)
    ]


def _register_temp_solver(name, fn, description="test-only"):
    if ("active", name) not in REGISTRY:
        REGISTRY.register(
            SolverSpec(
                problem="active",
                name=name,
                solve=fn,
                exact=False,
                guarantee="-",
                complexity="-",
                description=description,
            )
        )
    yield name
    REGISTRY._specs.pop(("active", name), None)


def _pool_sleepy_solver(instance, g, **params):
    time.sleep(0.6)
    return SolveOutcome(objective=float(g))


@pytest.fixture
def pool_sleepy_solver():
    yield from _register_temp_solver("pool-sleepy-test", _pool_sleepy_solver)


def _wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestWarmUp:
    def test_warm_up_spawns_jobs_workers(self):
        runner = BatchRunner(jobs=2)
        try:
            before = OBS.value("repro_pool_warmups_total")
            assert runner.warm_up() == 2
            assert runner._wd_total == 2
            assert len(runner._wd_idle) == 2
            assert OBS.value("repro_pool_warmups_total") == before + 2
        finally:
            runner.close()

    def test_warm_up_is_idempotent(self):
        runner = BatchRunner(jobs=2)
        try:
            assert runner.warm_up() == 2
            assert runner.warm_up() == 0
            assert runner._wd_total == 2
        finally:
            runner.close()

    def test_warm_up_partial_count(self):
        runner = BatchRunner(jobs=3)
        try:
            assert runner.warm_up(1) == 1
            assert runner._wd_total == 1
            # topping up spawns only the remainder
            assert runner.warm_up() == 2
            assert runner._wd_total == 3
        finally:
            runner.close()

    def test_warm_up_noop_for_serial_runner(self):
        runner = BatchRunner(jobs=1)
        try:
            assert runner.warm_up() == 0
            assert runner._wd_total == 0
        finally:
            runner.close()

    def test_warmed_workers_serve_deadlined_run(self):
        runner = BatchRunner(jobs=2)
        try:
            runner.warm_up()
            results = runner.run(_tasks(_instances(4), timeout=30.0))
            assert [r.error for r in results] == [None] * 4
            # the run leased the warmed workers, it did not grow the pool
            assert runner._wd_total == 2
        finally:
            runner.close()


class TestIdleTtl:
    def test_idle_ttl_rejects_bad_values(self):
        with pytest.raises(ValueError):
            BatchRunner(jobs=2, idle_ttl=0.0)
        with pytest.raises(ValueError):
            BatchRunner(jobs=2, idle_ttl=-1.0)

    def test_idle_workers_reaped_after_ttl(self):
        runner = BatchRunner(jobs=2, idle_ttl=0.2)
        try:
            before = OBS.value("repro_pool_reaped_total")
            assert runner.warm_up() == 2
            assert _wait_until(lambda: runner._wd_total == 0, timeout=10.0)
            assert runner._wd_idle == []
            # the counter is bumped after the reaped processes are
            # joined, a beat after the pool count reaches zero
            assert _wait_until(
                lambda: OBS.value("repro_pool_reaped_total") >= before + 2,
                timeout=5.0,
            )
        finally:
            runner.close()

    def test_pool_rebuilds_after_reap(self):
        runner = BatchRunner(jobs=2, idle_ttl=0.2)
        try:
            runner.warm_up()
            assert _wait_until(lambda: runner._wd_total == 0, timeout=10.0)
            results = runner.run(_tasks(_instances(3, seed=20), timeout=30.0))
            assert [r.error for r in results] == [None] * 3
        finally:
            runner.close()

    def test_no_ttl_keeps_workers_warm(self):
        runner = BatchRunner(jobs=2)
        try:
            runner.warm_up()
            time.sleep(0.5)
            assert runner._wd_total == 2
            assert len(runner._wd_idle) == 2
        finally:
            runner.close()


@_FORK_ONLY
class TestPriorityLeases:
    def test_urgent_acquire_beats_earlier_bulk_waiter(self, pool_sleepy_solver):
        """An urgent single solve overtakes a bulk waiter that queued first.

        A bulk stream holds both workers; a second bulk request then an
        urgent request queue up behind it.  The worker shed at the bulk
        stream's next completion must go to the urgent request even
        though the bulk waiter registered earlier.
        """
        runner = BatchRunner(jobs=2)
        done = {}
        errors = []

        def _run(label, tasks, priority):
            try:
                results = runner.run(tasks, priority=priority)
                done[label] = time.monotonic()
                assert [r.error for r in results] == [None] * len(tasks)
            except Exception as exc:  # pragma: no cover - debug aid
                errors.append((label, exc))

        bulk_tasks = _tasks(
            _instances(6, seed=100),
            algorithm=pool_sleepy_solver,
            timeout=30.0,
        )
        waiter_task = _tasks(
            _instances(1, seed=200),
            algorithm=pool_sleepy_solver,
            timeout=30.0,
        )
        urgent_task = _tasks(
            _instances(1, seed=300),
            algorithm=pool_sleepy_solver,
            timeout=30.0,
        )
        try:
            # Warm the pool so the bulk stream leases both workers
            # instantly — the B/C registrations below must land before
            # the bulk stream's first completion (~0.6s out).
            runner.warm_up()
            t_bulk = threading.Thread(
                target=_run, args=("bulk", bulk_tasks, 0), daemon=True
            )
            t_bulk.start()
            assert _wait_until(
                lambda: runner._wd_total == 2 and not runner._wd_idle
            ), "bulk stream never leased both workers"

            t_waiter = threading.Thread(
                target=_run, args=("waiter", waiter_task, 0), daemon=True
            )
            t_waiter.start()
            assert _wait_until(lambda: runner._wd_waiters >= 1, timeout=5.0)

            t_urgent = threading.Thread(
                target=_run,
                args=("urgent", urgent_task, PRIORITY_URGENT),
                daemon=True,
            )
            t_urgent.start()
            assert _wait_until(
                lambda: runner._wd_urgent_waiters >= 1, timeout=5.0
            )

            for t in (t_urgent, t_waiter, t_bulk):
                t.join(timeout=30.0)
                assert not t.is_alive()
            assert not errors, errors
            assert done["urgent"] < done["waiter"], (
                "urgent solve finished after the earlier bulk waiter: "
                f"urgent={done['urgent']:.3f} waiter={done['waiter']:.3f}"
            )
        finally:
            runner.close()

    def test_lease_counter_grows(self, pool_sleepy_solver):
        before = OBS.value("repro_pool_leases_total")
        runner = BatchRunner(jobs=2)
        try:
            runner.run(
                _tasks(
                    _instances(2, seed=400),
                    algorithm=pool_sleepy_solver,
                    timeout=30.0,
                )
            )
        finally:
            runner.close()
        assert OBS.value("repro_pool_leases_total") >= before + 1
