"""Lower bounds on optimal busy time (Observations 2–4).

Three bounds, each arbitrarily bad alone (Section 4.1's examples) but strong
in combination:

* **mass**: ``ℓ(J) / g`` — at most ``g`` jobs run concurrently per machine;
* **span**: ``OPT_inf(J)`` — dropping the capacity constraint only helps;
  for interval jobs this is just ``Sp(J)``;
* **demand profile**: ``sum_i ceil(|A(I_i)|/g) * ℓ(I_i)`` — within each
  interesting interval, ``ceil(|A|/g)`` machines must be busy.  Dominates the
  span bound and (for interval jobs) the mass bound.
"""

from __future__ import annotations

from ..core.intervals import span as _span
from ..core.jobs import Instance
from ..core.validation import require_capacity, require_interval_jobs
from .demand_profile import compute_demand_profile

__all__ = [
    "mass_lower_bound",
    "span_lower_bound",
    "demand_profile_lower_bound",
    "best_lower_bound",
]


def mass_lower_bound(instance: Instance, g: int) -> float:
    """Observation 2: ``OPT >= ℓ(J) / g``."""
    require_capacity(g)
    return instance.total_length / g


def span_lower_bound(instance: Instance) -> float:
    """Observation 3 for interval jobs: ``OPT >= Sp(J) = OPT_inf``.

    For flexible jobs ``OPT_inf`` requires the unbounded-capacity placement
    (see :mod:`repro.busytime.unbounded`); this function only accepts
    interval instances, where the spans are fixed.
    """
    require_interval_jobs(instance, "span bound")
    return _span(j.window for j in instance.jobs)


def demand_profile_lower_bound(instance: Instance, g: int) -> float:
    """Observation 4: ``OPT >= sum_i D(I_i) * ℓ(I_i)`` (interval jobs)."""
    return compute_demand_profile(instance, g).cost


def best_lower_bound(instance: Instance, g: int) -> float:
    """The strongest of the three bounds for an interval instance.

    The demand profile dominates both others for interval jobs (each segment
    contributes ``max(ℓ_i, A_i ℓ_i / g) <= D_i ℓ_i``), but we take the max
    defensively — it also documents the relationship, which a property test
    asserts.
    """
    if instance.n == 0:
        return 0.0
    return max(
        mass_lower_bound(instance, g),
        span_lower_bound(instance),
        demand_profile_lower_bound(instance, g),
    )
