"""Serving smoke test: start ``repro serve``, stream a batch, verify dedupe.

Starts a real ``repro serve`` subprocess on an ephemeral port, POSTs a
batch (three distinct tasks plus one duplicate) through the urllib
client, and checks the serving contract end to end:

* results come back as JSONL **in task order**;
* the duplicate digest is deduped server-side (``cached`` on first POST);
* re-POSTing the same batch hits the shared result cache for every task;
* ``/batch`` streams **incrementally**: with one deliberately slow task
  at the tail (a pure-Python reference-simplex LP capped by its
  ``timeout``), the first JSONL line reaches the client seconds before
  the last one — finished results are never held back by a slow
  neighbour;
* ``GET /metrics`` scraped **mid-batch** answers well-formed Prometheus
  exposition text showing the live stream (``repro_streams_in_flight``),
  and ``GET /stats`` answers the same registry as JSON.

CI runs this as the serving-smoke leg; it is also the minimal usage
example for :mod:`repro.serve`.
"""

import os
import re
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import repro
from repro.core import Instance
from repro.instances import SWEEP_GENERATORS
from repro.serve import ServeClient, task_request

#: Budget for the deliberately slow task; the incremental-arrival
#: assertion keys off it (first line << SLOW_TIMEOUT, last line >= it).
SLOW_TIMEOUT = 2.5


def start_server(cache_dir: str) -> tuple[subprocess.Popen, str]:
    """Launch ``repro serve --port 0`` and return (process, base URL)."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--jobs", "2", "--cache-dir", cache_dir,
        ],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    banner = proc.stdout.readline()
    match = re.search(r"listening on (http://\S+)", banner)
    if not match:
        proc.terminate()
        raise RuntimeError(f"server did not announce a URL: {banner!r}")
    return proc, match.group(1)


def check_incremental_streaming(client: ServeClient) -> None:
    """First JSONL line must arrive long before the slow tail task ends.

    The slow task is deterministic: LP rounding through the pure-Python
    ``reference`` simplex on a 100-job instance takes far longer than
    ``SLOW_TIMEOUT``, and its per-task timeout (soft SIGALRM inside the
    worker, hard watchdog above it) cuts it off at ~``SLOW_TIMEOUT``
    seconds — so the batch's last line cannot arrive before then, while
    the two tiny leading tasks stream out immediately.
    """
    big = SWEEP_GENERATORS["active"](100, 200, 3, 7)
    requests = [
        task_request(Instance.from_tuples([(0, 5, 2), (1, 7, 3)]),
                     "active", 2, algorithm="minimal"),
        task_request(Instance.from_tuples([(0, 4, 1), (2, 9, 3)]),
                     "active", 2, algorithm="minimal"),
        task_request(big, "active", 3, algorithm="rounding",
                     backend="reference", timeout=SLOW_TIMEOUT),
    ]
    start = time.monotonic()
    arrivals = [
        (result.index, time.monotonic() - start, result.ok)
        for result in client.batch(requests)
    ]
    assert [index for index, _, _ in arrivals] == [0, 1, 2], arrivals
    first, last = arrivals[0][1], arrivals[-1][1]
    assert first < SLOW_TIMEOUT * 0.8, (
        f"first line took {first:.2f}s; streaming is not incremental"
    )
    assert last >= SLOW_TIMEOUT * 0.9, (
        f"slow task finished in {last:.2f}s; it no longer pins the tail"
    )
    slow = arrivals[-1]
    assert not slow[2], "the timeout-capped task should report a failure"
    print(
        f"incremental : first line {first:.2f}s, "
        f"last line {last:.2f}s after POST (slow tail capped at "
        f"{SLOW_TIMEOUT:g}s)"
    )


def check_metrics_scrape(client: ServeClient) -> None:
    """``GET /metrics`` answers valid Prometheus text *during* a batch.

    A batch with a deliberately slow tail keeps a stream open for
    seconds; once its first JSONL line proves the batch is live, the
    scrape must show ``repro_streams_in_flight >= 1`` and a well-formed
    exposition (every line a ``# HELP``/``# TYPE`` comment or a
    ``name[{labels}] value`` series with a parseable value).
    """
    big = SWEEP_GENERATORS["active"](100, 200, 3, 11)
    requests = [
        task_request(Instance.from_tuples([(0, 5, 2), (1, 7, 3)]),
                     "active", 2, algorithm="minimal"),
        task_request(big, "active", 3, algorithm="rounding",
                     backend="reference", timeout=SLOW_TIMEOUT),
    ]
    arrivals: list[object] = []

    def consume() -> None:
        for result in client.batch(requests):
            arrivals.append(result)

    consumer = threading.Thread(target=consume)
    consumer.start()
    try:
        deadline = time.monotonic() + 30
        while not arrivals and time.monotonic() < deadline:
            time.sleep(0.05)
        assert arrivals, "batch produced no line within 30s"
        text = client.metrics()
    finally:
        consumer.join(timeout=60)
    assert not consumer.is_alive(), "batch consumer hung"

    lines = text.splitlines()
    assert lines, "empty exposition"
    series_re = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? (\S+)$"
    )
    seen: dict[str, float] = {}
    for line in lines:
        assert line and line == line.strip(), f"malformed line {line!r}"
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE ")), line
            continue
        match = series_re.match(line)
        assert match, f"malformed series line {line!r}"
        raw = match.group(2)
        value = float("inf") if raw == "+Inf" else float(raw)
        seen[line.split("{")[0].split(" ")[0]] = value
    for needed in (
        "repro_streams_in_flight",
        "repro_tasks_total",
        "repro_task_seconds_bucket",
        "repro_cache_misses_total",
    ):
        assert needed in seen, f"required series {needed} missing"
    assert seen["repro_streams_in_flight"] >= 1, (
        "scrape overlapped a live batch; streams_in_flight must show it"
    )

    stats = client.stats()
    assert stats["ok"] and "task_seconds" in stats, stats
    print(
        f"metrics     : {len(lines)} exposition lines scraped mid-batch, "
        f"streams_in_flight={seen['repro_streams_in_flight']:g}"
    )


def main() -> None:
    instances = [
        Instance.from_tuples([(0, 4, 2), (1, 5, 3)]),
        Instance.from_tuples([(0, 3, 1), (2, 6, 2), (1, 4, 2)]),
        Instance.from_tuples([(0, 2, 1), (0, 5, 2)]),
    ]
    requests = [
        task_request(inst, "active", 3, algorithm="minimal", meta={"pos": i})
        for i, inst in enumerate(instances)
    ]
    # a duplicate digest: same instance/coordinates as task 0
    requests.append(
        task_request(instances[0], "active", 3, algorithm="minimal",
                     meta={"pos": 3})
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        proc, url = start_server(cache_dir)
        try:
            client = ServeClient(url, http_timeout=120.0)

            algos = client.algos()
            assert "minimal" in algos["problems"]["active"], algos["problems"]
            print(f"server at {url}: "
                  f"{len(algos['solvers'])} solvers, "
                  f"{len(algos['backends'])} backends")

            first = list(client.batch(requests))
            assert [r.index for r in first] == [0, 1, 2, 3], first
            assert all(r.ok for r in first), [r.error for r in first]
            assert first[3].cached, "duplicate digest was not deduped"
            assert first[3].objective == first[0].objective
            print("first batch : ordered, duplicate deduped server-side")

            second = list(client.batch(requests))
            assert [r.index for r in second] == [0, 1, 2, 3], second
            assert all(r.cached for r in second), second
            print("second batch: every task served from the shared cache")

            # 4 cache hits: every task of the second batch (the first
            # batch's duplicate is deduped in-run, not via the cache).
            health = client.health()
            assert health["ok"] and health["cache"]["hits"] >= 4, health
            print(f"serve smoke OK: {health['tasks_served']} tasks served, "
                  f"{health['cache']['hits']} cache hits")

            check_incremental_streaming(client)
            check_metrics_scrape(client)
        finally:
            proc.terminate()
            proc.wait(timeout=10)


if __name__ == "__main__":
    main()  # assertion failures exit non-zero; success exits 0
