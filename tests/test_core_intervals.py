"""Unit tests for interval algebra (repro.core.intervals)."""

import pytest

from repro.core import (
    Instance,
    coverage_counts,
    interesting_intervals,
    intersect,
    intersection_length,
    length,
    merge_intervals,
    span,
    subtract,
    total_length,
)
from repro.core.intervals import contains


class TestLengthAndSpan:
    def test_length(self):
        assert length((1.0, 3.5)) == 2.5

    def test_length_empty(self):
        assert length((2.0, 2.0)) == 0.0
        assert length((3.0, 2.0)) == 0.0  # degenerate clamps to 0

    def test_total_length_counts_overlaps(self):
        assert total_length([(0, 2), (1, 3)]) == 4.0

    def test_span_merges_overlaps(self):
        assert span([(0, 2), (1, 3)]) == 3.0

    def test_span_disjoint(self):
        assert span([(0, 1), (2, 3)]) == 2.0

    def test_span_matches_definition_10(self):
        # Sp({I, I'}) = l(I) + Sp(I') - l(I ∩ I')
        i1, i2 = (0.0, 2.0), (1.0, 4.0)
        expected = length(i1) + length(i2) - intersection_length(i1, i2)
        assert span([i1, i2]) == pytest.approx(expected)

    def test_span_empty(self):
        assert span([]) == 0.0


class TestMerge:
    def test_merge_touching(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_merge_nested(self):
        assert merge_intervals([(0, 5), (1, 2)]) == [(0, 5)]

    def test_merge_keeps_gaps(self):
        assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_merge_unsorted_input(self):
        assert merge_intervals([(4, 5), (0, 1), (0.5, 2)]) == [(0, 2), (4, 5)]

    def test_merge_drops_empty(self):
        assert merge_intervals([(1, 1), (2, 2)]) == []


class TestIntersect:
    def test_overlap(self):
        assert intersect((0, 3), (2, 5)) == (2, 3)

    def test_disjoint_returns_none(self):
        assert intersect((0, 1), (2, 3)) is None

    def test_touching_returns_none(self):
        assert intersect((0, 1), (1, 2)) is None

    def test_intersection_length(self):
        assert intersection_length((0, 3), (2, 5)) == 1.0
        assert intersection_length((0, 1), (5, 6)) == 0.0


class TestSubtract:
    def test_cut_middle(self):
        assert subtract((0, 10), [(3, 5)]) == [(0, 3), (5, 10)]

    def test_cut_ends(self):
        assert subtract((0, 10), [(0, 2), (8, 10)]) == [(2, 8)]

    def test_cut_everything(self):
        assert subtract((0, 10), [(0, 10)]) == []

    def test_cut_nothing(self):
        assert subtract((0, 10), []) == [(0, 10)]

    def test_cut_overlapping_pieces(self):
        assert subtract((0, 10), [(1, 4), (3, 6)]) == [(0, 1), (6, 10)]


class TestContains:
    def test_contains(self):
        assert contains((0, 10), (2, 5))
        assert contains((0, 10), (0, 10))
        assert not contains((2, 5), (0, 10))


class TestInterestingIntervals:
    def test_empty_instance(self):
        assert interesting_intervals(Instance(tuple())) == []

    def test_single_job(self):
        inst = Instance.from_intervals([(1.0, 3.0)])
        assert interesting_intervals(inst) == [(1.0, 3.0)]

    def test_segments_split_at_endpoints(self):
        inst = Instance.from_intervals([(0, 2), (1, 3)])
        assert interesting_intervals(inst) == [(0, 1), (1, 2), (2, 3)]

    def test_zero_demand_gaps_excluded(self):
        inst = Instance.from_intervals([(0, 1), (3, 4)])
        assert interesting_intervals(inst) == [(0, 1), (3, 4)]

    def test_at_most_2n_minus_1_segments(self, rng):
        from repro.instances import random_interval_instance

        for _ in range(20):
            inst = random_interval_instance(8, 15.0, rng=rng)
            segs = interesting_intervals(inst)
            assert len(segs) <= 2 * inst.n - 1

    def test_no_job_endpoint_interior(self, interval_instance):
        segs = interesting_intervals(interval_instance)
        endpoints = {j.release for j in interval_instance.jobs} | {
            j.deadline for j in interval_instance.jobs
        }
        for a, b in segs:
            for e in endpoints:
                assert not (a + 1e-9 < e < b - 1e-9)


class TestCoverageCounts:
    def test_empty(self):
        assert coverage_counts([]) == []

    def test_single(self):
        assert coverage_counts([(0, 2)]) == [((0, 2), 1)]

    def test_stacked(self):
        cov = coverage_counts([(0, 2), (0, 2), (0, 2)])
        assert cov == [((0, 2), 3)]

    def test_staircase(self):
        cov = coverage_counts([(0, 3), (1, 4)])
        assert cov == [((0, 1), 1), ((1, 3), 2), ((3, 4), 1)]

    def test_gap_omitted(self):
        cov = coverage_counts([(0, 1), (2, 3)])
        assert cov == [((0, 1), 1), ((2, 3), 1)]

    def test_total_mass_conserved(self, rng):
        ivs = []
        for _ in range(15):
            a = float(rng.uniform(0, 10))
            b = a + float(rng.uniform(0.1, 3))
            ivs.append((a, b))
        cov = coverage_counts(ivs)
        mass = sum((b - a) * c for (a, b), c in cov)
        assert mass == pytest.approx(total_length(ivs))
