"""Tests for the Theorem-2 LP-rounding 2-approximation."""

import pytest

from repro.activetime import exact_active_time, round_active_time
from repro.core import Instance
from repro.instances import (
    figure3,
    lp_gap,
    random_active_time_instance,
    tight_window_instance,
)
from repro.lp import solve_active_time_lp


class TestBasics:
    def test_output_verifies(self, tiny_instance):
        sol = round_active_time(tiny_instance, 2, strict=True)
        sol.schedule.verify()

    def test_empty_instance(self):
        sol = round_active_time(Instance(tuple()), 1)
        assert sol.cost == 0

    def test_single_job(self):
        inst = Instance.from_tuples([(0, 5, 3)])
        sol = round_active_time(inst, 1, strict=True)
        assert sol.cost == 3

    def test_accepts_presolved_lp(self, tiny_instance):
        lp = solve_active_time_lp(tiny_instance, 2)
        sol = round_active_time(tiny_instance, 2, lp=lp, strict=True)
        assert sol.lp is lp

    def test_infeasible_instance_raises(self):
        inst = Instance.from_tuples([(0, 1, 1), (0, 1, 1)])
        with pytest.raises(RuntimeError):
            round_active_time(inst, 1)


class TestGuarantee:
    def test_within_2x_lp_random(self, rng):
        checked = 0
        for _ in range(25):
            n = int(rng.integers(2, 10))
            T = int(rng.integers(3, 12))
            g = int(rng.integers(1, 4))
            inst = random_active_time_instance(n, T, rng=rng)
            try:
                sol = round_active_time(inst, g, strict=True)
            except RuntimeError as e:
                if "could not be solved" in str(e):
                    continue
                raise
            assert sol.guarantee_holds, (sol.cost, sol.lp_objective)
            assert sol.repair_slots == []
            assert sol.charging_failures == []
            checked += 1
        assert checked >= 10

    def test_within_2x_opt(self, rng):
        for _ in range(12):
            inst = random_active_time_instance(6, 9, rng=rng)
            g = int(rng.integers(1, 4))
            try:
                exact = exact_active_time(inst, g)
            except RuntimeError:
                continue
            sol = round_active_time(inst, g, strict=True)
            assert sol.cost <= 2 * exact.cost

    def test_gap_gadget_ratio_approaches_2(self):
        ratios = []
        for g in (2, 4, 8):
            gad = lp_gap(g)
            sol = round_active_time(gad.instance, g, strict=True)
            assert sol.cost == gad.facts["ip_opt"]  # rounding is optimal here
            ratios.append(sol.ratio_vs_lp)
        assert ratios == sorted(ratios)
        assert ratios[-1] > 1.7

    def test_barely_open_stress_family(self, rng):
        for g in (2, 3):
            inst = tight_window_instance(12, g, rng=rng)
            sol = round_active_time(inst, g, strict=True)
            sol.schedule.verify()
            assert sol.guarantee_holds

    def test_figure3_gadget(self):
        for g in (3, 4):
            gad = figure3(g)
            sol = round_active_time(gad.instance, g, strict=True)
            sol.schedule.verify()
            assert sol.cost <= 2 * gad.facts["opt_active_time"]


class TestTrace:
    def test_iterations_cover_all_deadlines(self, tiny_instance):
        sol = round_active_time(tiny_instance, 2, strict=True)
        lp = sol.lp
        assert len(sol.iterations) == len(lp.deadline_blocks())

    def test_actions_are_known(self, rng):
        for _ in range(8):
            inst = random_active_time_instance(6, 9, rng=rng)
            try:
                sol = round_active_time(inst, 2, strict=True)
            except RuntimeError:
                continue
            for it in sol.iterations:
                assert it.action in ("none", "half", "carry", "charged")
                if it.action == "carry":
                    assert it.proxy_out is not None
                    assert it.proxy_out[1] < 0.5
                if it.action == "charged":
                    assert it.charge is not None

    def test_opened_full_slots_are_open(self, tiny_instance):
        sol = round_active_time(tiny_instance, 2, strict=True)
        active = set(sol.schedule.active_slots)
        for it in sol.iterations:
            assert set(it.opened_full) <= active

    def test_at_most_one_proxy_at_a_time(self, rng):
        for _ in range(8):
            inst = random_active_time_instance(7, 10, rng=rng)
            try:
                sol = round_active_time(inst, 2, strict=True)
            except RuntimeError:
                continue
            for it in sol.iterations:
                if it.proxy_out is not None:
                    assert isinstance(it.proxy_out[0], int)


class TestLedgerCertificate:
    def test_certificate_at_most_2(self, rng):
        for _ in range(15):
            inst = random_active_time_instance(7, 10, rng=rng)
            g = int(rng.integers(1, 4))
            try:
                sol = round_active_time(inst, g, strict=True)
            except RuntimeError:
                continue
            sol.ledger.verify()
            assert sol.ledger.certificate_ratio() <= 2.0 + 1e-6

    def test_opened_count_matches_cost(self, rng):
        """Every active slot is accounted by the ledger (no silent slots)."""
        for _ in range(10):
            inst = random_active_time_instance(6, 9, rng=rng)
            try:
                sol = round_active_time(inst, 2, strict=True)
            except RuntimeError:
                continue
            assert sol.ledger.opened_count() == sol.cost
