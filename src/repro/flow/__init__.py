"""Max-flow substrate: Dinic solver and the Figure-2 feasibility network."""

from .dinic import Dinic, MaxFlowResult
from .feasibility import (
    ActiveTimeFeasibility,
    extract_assignment,
    is_feasible_slot_set,
)
from .network import NamedFlowNetwork

__all__ = [
    "ActiveTimeFeasibility",
    "Dinic",
    "MaxFlowResult",
    "NamedFlowNetwork",
    "extract_assignment",
    "is_feasible_slot_set",
]
