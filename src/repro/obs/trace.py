"""Per-task trace spans: where did this task's wall time go?

A :class:`TaskTrace` records named spans (durations in seconds) plus a
flat label set.  The payload is plain JSON — it crosses the worker
process boundary inside ``TaskResult.metrics["trace"]`` and lands in
JSONL result files unchanged — and reads as the task's life story::

    {"labels": {"algorithm": "rounding", "backend": "highs",
                "warm": "warm", "watchdog_kill": false},
     "spans": [{"name": "cache_lookup", "dur": 0.00002},
               {"name": "queued", "dur": 0.013},
               {"name": "solving", "dur": 0.241},
               {"name": "total", "dur": 0.255}]}

The worker side records ``solving`` (and labels what it learned from
the solver layer: backend, warm/cold); the parent-side runner prepends
``cache_lookup``/``queued`` and appends ``total`` when the result comes
home, since only the parent knows when the task entered the queue.
Durations, never absolute timestamps: workers and parents need not
share a clock.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "TaskTrace",
    "trace_labels",
    "trace_spans",
]


class TaskTrace:
    """Span recorder for one task; ``None``-valued labels are dropped."""

    __slots__ = ("labels", "spans")

    def __init__(self, **labels: Any) -> None:
        self.labels: dict[str, Any] = {
            k: v for k, v in labels.items() if v is not None
        }
        self.spans: list[dict[str, Any]] = []

    def label(self, **labels: Any) -> None:
        """Merge labels into the trace (``None`` values are dropped)."""
        self.labels.update(
            {k: v for k, v in labels.items() if v is not None}
        )

    def add_span(self, name: str, dur: float) -> None:
        self.spans.append({"name": name, "dur": round(float(dur), 6)})

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Record the duration of a ``with`` block as one span."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_span(name, time.perf_counter() - start)

    def to_payload(self) -> dict[str, Any]:
        """The JSON-serializable form carried in ``metrics["trace"]``."""
        return {"labels": dict(self.labels), "spans": list(self.spans)}


def trace_spans(metrics: dict[str, Any] | None) -> dict[str, float]:
    """``{span name: duration}`` from a result's metrics (missing -> {}).

    Repeated span names fold by summation, so a retried stage reads as
    its total cost.
    """
    payload = (metrics or {}).get("trace") or {}
    out: dict[str, float] = {}
    for span in payload.get("spans", ()):
        name = span.get("name")
        if isinstance(name, str):
            out[name] = out.get(name, 0.0) + float(span.get("dur", 0.0))
    return out


def trace_labels(metrics: dict[str, Any] | None) -> dict[str, Any]:
    """The trace's label set from a result's metrics (missing -> {})."""
    payload = (metrics or {}).get("trace") or {}
    labels = payload.get("labels")
    return dict(labels) if isinstance(labels, dict) else {}
