"""Realistic workload-trace generators.

The uniform families in :mod:`repro.instances.generators` are ideal for
property testing; benchmarking against *plausible* workloads needs the
shapes real systems produce.  Three classic patterns, all seeded and
integral (so every solver in the library applies):

* :func:`diurnal_trace` — day/night demand cycle (the VM-consolidation
  motivation from the paper's introduction);
* :func:`bursty_trace` — Poisson background plus synchronized bursts
  (incident retries, cron storms);
* :func:`heavy_tailed_trace` — bounded-Pareto job lengths (the
  many-mice/few-elephants shape of batch clusters).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.jobs import Instance, Job

__all__ = ["diurnal_trace", "bursty_trace", "heavy_tailed_trace"]


def _rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def diurnal_trace(
    n: int,
    *,
    day_hours: int = 24,
    peak_hour: int = 14,
    spread: float = 4.0,
    max_length: int = 4,
    max_slack: int = 6,
    rng: np.random.Generator | int | None = None,
) -> Instance:
    """Releases concentrated around a daily peak (wrapped Gaussian).

    Jobs released near the peak get tight windows (interactive); off-peak
    jobs get loose windows (batch) — the structure that makes consolidation
    profitable.
    """
    gen = _rng(rng)
    jobs: list[Job] = []
    for i in range(n):
        hour = int(round(gen.normal(peak_hour, spread))) % day_hours
        distance = min(abs(hour - peak_hour), day_hours - abs(hour - peak_hour))
        off_peak = distance > spread
        length = int(gen.integers(1, max_length + 1))
        slack = (
            int(gen.integers(2, max_slack + 1))
            if off_peak
            else int(gen.integers(0, 3))
        )
        deadline = min(hour + length + slack, day_hours + max_length + max_slack)
        jobs.append(Job(hour, deadline, length, id=i,
                        label="batch" if off_peak else "interactive"))
    return Instance(tuple(jobs))


def bursty_trace(
    n: int,
    *,
    horizon: int = 40,
    burst_count: int = 3,
    burst_fraction: float = 0.5,
    max_length: int = 3,
    rng: np.random.Generator | int | None = None,
) -> Instance:
    """Uniform background arrivals plus synchronized bursts.

    A ``burst_fraction`` of the jobs arrive in ``burst_count`` tight clusters
    (same release, short windows) — the demand spikes that stress the
    capacity constraint and the charging machinery.
    """
    gen = _rng(rng)
    if not 0 <= burst_fraction <= 1:
        raise ValueError("burst_fraction must be in [0, 1]")
    burst_times = sorted(
        int(gen.integers(0, max(1, horizon - max_length - 2)))
        for _ in range(max(1, burst_count))
    )
    jobs: list[Job] = []
    for i in range(n):
        length = int(gen.integers(1, max_length + 1))
        if gen.uniform() < burst_fraction:
            release = int(gen.choice(burst_times))
            slack = int(gen.integers(0, 2))
            label = "burst"
        else:
            release = int(gen.integers(0, horizon - length))
            slack = int(gen.integers(1, 8))
            label = "background"
        deadline = min(release + length + slack, horizon + max_length + 8)
        jobs.append(Job(release, deadline, length, id=i, label=label))
    return Instance(tuple(jobs))


def heavy_tailed_trace(
    n: int,
    *,
    horizon: int = 60,
    alpha: float = 1.3,
    max_length: int = 16,
    rng: np.random.Generator | int | None = None,
) -> Instance:
    """Bounded-Pareto job lengths: many short jobs, a few very long ones.

    ``alpha`` is the Pareto shape (smaller = heavier tail); lengths are
    clipped to ``[1, max_length]`` and rounded to integers.
    """
    gen = _rng(rng)
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    jobs: list[Job] = []
    for i in range(n):
        raw = (1.0 - gen.uniform()) ** (-1.0 / alpha)  # Pareto(1, alpha)
        length = int(min(max_length, max(1, round(raw))))
        slack = int(gen.integers(0, max(2, length)))
        release = int(gen.integers(0, max(1, horizon - length - slack)))
        jobs.append(
            Job(release, release + length + slack, length, id=i,
                label="elephant" if length > max_length // 2 else "mouse")
        )
    return Instance(tuple(jobs))
