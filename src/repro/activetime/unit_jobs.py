"""Exact active time for unit-length jobs (Chang–Gabow–Khuller special case).

The paper recalls that unit jobs admit a fast exact algorithm [2].  We
implement the *lazy activation* greedy: sweep slots right to left starting
from the all-open solution and close every slot whose removal keeps the
instance feasible, preferring to close **early** slots.  For unit jobs the
resulting minimal feasible solution is minimum:

Each feasibility probe is the bipartite matching/flow of Figure 2, and the
left-to-right closing order makes the construction equivalent to the
"activate as late as possible, only when forced" greedy — for unit jobs the
set system of feasible activation sets is a transversal matroid restricted to
intervals, where greedy deletion against a fixed order is optimal.  (The
test-suite cross-validates the output against the exact MILP on thousands of
random unit instances; for *non-unit* jobs this greedy is only the Theorem-1
3-approximation, which Figure 3 shows is tight.)
"""

from __future__ import annotations

from ..core.jobs import Instance
from ..core.validation import require_capacity, require_integral, require_unit_jobs
from .minimal_feasible import minimal_feasible_schedule
from .schedule import ActiveTimeSchedule

__all__ = ["unit_jobs_optimal_schedule"]


def unit_jobs_optimal_schedule(instance: Instance, g: int) -> ActiveTimeSchedule:
    """Optimal active-time schedule for an all-unit-length instance.

    Raises
    ------
    ValueError
        When some job is not unit length, or the instance is infeasible at
        capacity ``g``.
    """
    require_integral(instance)
    require_unit_jobs(instance)
    require_capacity(g)
    return minimal_feasible_schedule(instance, g, order="left")
