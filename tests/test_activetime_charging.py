"""Tests for the dependent/trio/filler charging ledger (Lemma 6 machinery)."""

import pytest

from repro.activetime import ChargingError, ChargingLedger


class TestDependents:
    def test_first_barely_becomes_dependent(self):
        ledger = ChargingLedger()
        ledger.register_full(5)
        rec = ledger.charge_barely(7, 0.3)
        assert rec.kind == "dependent"
        assert rec.target == 5

    def test_earliest_full_preferred(self):
        ledger = ChargingLedger()
        ledger.register_full(9)
        ledger.register_full(3)
        rec = ledger.charge_barely(10, 0.2)
        assert rec.target == 3

    def test_each_full_at_most_one_dependent(self):
        ledger = ChargingLedger()
        ledger.register_full(3)
        ledger.register_full(5)
        assert ledger.charge_barely(6, 0.3).target == 3
        assert ledger.charge_barely(7, 0.3).target == 5


class TestTrios:
    def test_trio_formed_when_masses_suffice(self):
        ledger = ChargingLedger()
        ledger.register_full(3)
        ledger.charge_barely(4, 0.3)          # dependent
        rec = ledger.charge_barely(6, 0.25)   # 0.3 + 0.25 >= 0.5 -> trio
        assert rec.kind == "trio"
        assert rec.target == 3

    def test_trio_requires_combined_half(self):
        ledger = ChargingLedger()
        ledger.register_full(3)
        ledger.charge_barely(4, 0.1)
        with pytest.raises(ChargingError):
            ledger.charge_barely(6, 0.2)  # 0.1 + 0.2 < 0.5, nothing else

    def test_full_in_trio_not_reused(self):
        ledger = ChargingLedger()
        ledger.register_full(3)
        ledger.charge_barely(4, 0.3)
        ledger.charge_barely(6, 0.3)  # trio completes slot 3
        with pytest.raises(ChargingError):
            ledger.charge_barely(8, 0.4)


class TestFillers:
    def test_filler_on_half_open(self):
        ledger = ChargingLedger()
        ledger.register_half(4, 0.7)
        rec = ledger.charge_barely(6, 0.4)  # 0.7 + 0.4 >= 1
        assert rec.kind == "filler"
        assert rec.target == 4

    def test_filler_needs_combined_one(self):
        ledger = ChargingLedger()
        ledger.register_half(4, 0.55)
        with pytest.raises(ChargingError):
            ledger.charge_barely(6, 0.3)

    def test_half_at_most_one_filler(self):
        ledger = ChargingLedger()
        ledger.register_half(4, 0.8)
        ledger.register_half(5, 0.9)
        assert ledger.charge_barely(6, 0.45).target == 4
        assert ledger.charge_barely(7, 0.45).target == 5

    def test_priority_full_before_half(self):
        ledger = ChargingLedger()
        ledger.register_half(2, 0.9)
        ledger.register_full(4)
        rec = ledger.charge_barely(6, 0.4)
        assert rec.kind == "dependent"


class TestCertificate:
    def test_counts_and_mass(self):
        ledger = ChargingLedger()
        ledger.register_full(1)
        ledger.register_full(2)
        ledger.register_half(3, 0.6)
        ledger.charge_barely(4, 0.3)   # dependent on 1
        ledger.charge_barely(5, 0.3)   # dependent on 2
        ledger.charge_barely(6, 0.4)   # trio with slot 1 (0.3 + 0.4 >= .5)
        ledger.charge_barely(7, 0.45)  # filler of 3
        assert ledger.opened_count() == 7
        assert ledger.charged_mass() == pytest.approx(
            1 + 1 + 0.6 + 0.3 + 0.3 + 0.4 + 0.45
        )
        assert ledger.certificate_ratio() <= 2.0
        ledger.verify()

    def test_empty_ledger(self):
        ledger = ChargingLedger()
        assert ledger.opened_count() == 0
        assert ledger.certificate_ratio() == 0.0
        ledger.verify()

    def test_verify_rejects_bad_half(self):
        ledger = ChargingLedger()
        ledger.register_half(2, 0.3)  # below 1/2: invalid registration
        with pytest.raises(ChargingError):
            ledger.verify()

    def test_ratio_never_exceeds_two_for_legal_sequences(self, rng):
        """Randomized charging sequences keep the certificate below 2."""
        for _ in range(30):
            ledger = ChargingLedger()
            slot = 1
            for _ in range(int(rng.integers(2, 15))):
                kind = rng.integers(0, 3)
                if kind == 0:
                    ledger.register_full(slot)
                elif kind == 1:
                    ledger.register_half(slot, float(rng.uniform(0.5, 0.999)))
                else:
                    try:
                        ledger.charge_barely(
                            slot, float(rng.uniform(0.01, 0.499))
                        )
                    except ChargingError:
                        pass
                slot += 1
            ledger.verify()
