"""Tests for the realistic trace generators (repro.instances.traces)."""

import numpy as np
import pytest

from repro.instances.traces import bursty_trace, diurnal_trace, heavy_tailed_trace


class TestDiurnal:
    def test_shape(self, rng):
        inst = diurnal_trace(40, rng=rng)
        assert inst.n == 40
        assert inst.is_integral

    def test_labels(self, rng):
        inst = diurnal_trace(60, rng=rng)
        labels = {j.label for j in inst.jobs}
        assert labels <= {"interactive", "batch"}
        assert "interactive" in labels

    def test_peak_concentration(self, rng):
        inst = diurnal_trace(300, peak_hour=12, spread=3.0, rng=rng)
        near = sum(1 for j in inst.jobs if abs(j.release - 12) <= 3)
        far = sum(1 for j in inst.jobs if abs(j.release - 12) > 6)
        assert near > far

    def test_deterministic(self):
        a = diurnal_trace(30, rng=np.random.default_rng(1))
        b = diurnal_trace(30, rng=np.random.default_rng(1))
        assert a == b

    def test_schedulable(self, rng):
        from repro.activetime import minimum_feasible_capacity

        inst = diurnal_trace(25, rng=rng)
        g = minimum_feasible_capacity(inst)
        assert g >= 1


class TestBursty:
    def test_shape(self, rng):
        inst = bursty_trace(40, rng=rng)
        assert inst.n == 40
        assert inst.is_integral

    def test_burst_fraction_zero(self, rng):
        inst = bursty_trace(30, burst_fraction=0.0, rng=rng)
        assert all(j.label == "background" for j in inst.jobs)

    def test_burst_fraction_one(self, rng):
        inst = bursty_trace(30, burst_fraction=1.0, burst_count=2, rng=rng)
        assert all(j.label == "burst" for j in inst.jobs)
        assert len({j.release for j in inst.jobs}) <= 2

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            bursty_trace(10, burst_fraction=1.5, rng=rng)

    def test_bursts_raise_peak_demand(self, rng):
        from repro.busytime import pin_instance
        from repro.instances import random_active_time_instance

        bursty = bursty_trace(60, burst_fraction=0.8, burst_count=2, rng=rng)
        smooth = bursty_trace(60, burst_fraction=0.0, rng=rng)

        def peak(inst):
            pinned = pin_instance(inst, {j.id: j.release for j in inst.jobs})
            return max(
                pinned.raw_demand_at(t + 0.5)
                for t in range(int(pinned.latest_deadline))
            )

        assert peak(bursty) >= peak(smooth)


class TestHeavyTailed:
    def test_shape(self, rng):
        inst = heavy_tailed_trace(50, rng=rng)
        assert inst.n == 50
        assert inst.is_integral

    def test_lengths_clipped(self, rng):
        inst = heavy_tailed_trace(100, max_length=8, rng=rng)
        assert all(1 <= j.length <= 8 for j in inst.jobs)

    def test_mice_dominate(self, rng):
        inst = heavy_tailed_trace(300, rng=rng)
        mice = sum(1 for j in inst.jobs if j.label == "mouse")
        elephants = inst.n - mice
        assert mice > elephants

    def test_invalid_alpha(self, rng):
        with pytest.raises(ValueError):
            heavy_tailed_trace(10, alpha=0.0, rng=rng)

    def test_usable_by_pipeline(self, rng):
        from repro.busytime import schedule_flexible

        inst = heavy_tailed_trace(15, horizon=25, max_length=6, rng=rng)
        s = schedule_flexible(inst, 3)
        s.verify()
