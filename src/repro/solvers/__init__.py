"""`repro.solvers` — the backend-neutral LP/MILP layer.

Layers, bottom up:

* :mod:`~repro.solvers.ir` — :class:`LinearProgram`, the canonical
  sparse min-LP/MILP representation every problem assembler emits.
* :mod:`~repro.solvers.base` — the :class:`SolverBackend` protocol and
  the uniform :class:`SolverResult`.
* backends — :mod:`~repro.solvers.scipy_backend` (HiGHS via scipy, the
  default), :mod:`~repro.solvers.highs_backend` (resident-model HiGHS
  via ``highspy`` with warm-start re-solve chains and duals),
  :mod:`~repro.solvers.mip_backend` (optional python-mip),
  :mod:`~repro.solvers.reference` (dependency-free dense simplex +
  branch & bound for tiny instances and CI cross-checks).
* :mod:`~repro.solvers.registry` — name -> backend with env/CLI
  selection and capability-based fallback; :func:`solve_ir` is the one
  routing entry point the algorithm layer calls.
"""

from .base import (
    SolverBackend,
    SolverError,
    SolverResult,
    validate_warm_start,
)
from .highs_backend import HighsBackend, structure_digest
from .ir import LinearProgram
from .mip_backend import PythonMipBackend
from .reference import ReferenceBackend
from .registry import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    available_backend_names,
    backend_menu,
    backend_names,
    backend_status,
    get_backend,
    register_backend,
    resolve_backend,
    solve_ir,
)
from .scipy_backend import ScipyHighsBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "HighsBackend",
    "LinearProgram",
    "PythonMipBackend",
    "ReferenceBackend",
    "ScipyHighsBackend",
    "SolverBackend",
    "SolverError",
    "SolverResult",
    "available_backend_names",
    "backend_menu",
    "backend_names",
    "backend_status",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "solve_ir",
    "structure_digest",
    "validate_warm_start",
]
