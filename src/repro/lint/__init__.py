"""Project-specific static analysis (``repro lint``).

A stdlib-only, pluggable AST framework that walks every module under
``src/``, ``tools/`` and ``benchmarks/`` and runs a registry of checks,
each motivated by a concurrency, caching or wire-contract bug this
codebase actually shipped and fixed:

=======  ==========================================================
REP001   blocking calls inside coroutines (event-loop stalls)
REP002   broad ``except`` swallowing CancelledError/KeyboardInterrupt
REP003   lock discipline (``with``-only, no lock-free reads of
         lock-guarded fields)
REP004   metrics hygiene (``repro_*`` snake_case, unique, README
         catalog parity in both directions)
REP005   fork/pickle safety of work sent to process pools
REP006   determinism in content-digest paths
=======  ==========================================================

``REP000`` is the framework's meta rule (parse failures, waiver
hygiene).  Findings print as ``path:line: REP### message``; a finding
that is deliberate is waived *on its line* with an auditable reason::

    handler()   # lint: waive[REP002] teardown path must never raise

The legacy ``# blocking-ok`` spelling (from the retired
``tools/check_async_blocking.py``) still works and means exactly
``waive[REP001]``.  The framework lints itself; the CI gate runs
``repro lint src tools benchmarks`` and fails on any unwaived finding.
"""

from .base import Finding, ModuleContext, Rule, RULES, TreeContext, register
from .cli import main
from .runner import LintReport, lint_paths

__all__ = [
    "Finding",
    "LintReport",
    "ModuleContext",
    "RULES",
    "Rule",
    "TreeContext",
    "lint_paths",
    "main",
    "register",
]
