"""The ``SolverBackend`` protocol and the uniform ``SolverResult``.

A backend is anything that can take a :class:`~repro.solvers.ir.LinearProgram`
and return a :class:`SolverResult`.  The contract is deliberately small —
``solve``, ``capabilities``, ``available`` — so that wrapping a new solver
is a one-file affair (see :mod:`repro.solvers.mip_backend` for the optional
python-mip adapter and :mod:`repro.solvers.reference` for the from-scratch
dense simplex).

Status vocabulary (shared by every backend):

* ``optimal``    — solved to optimality; ``x`` and ``objective`` are set.
* ``infeasible`` — no feasible point exists.
* ``unbounded``  — the objective is unbounded below.
* ``timeout``    — the time limit hit before optimality.
* ``error``      — anything else (numerical failure, solver crash).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Protocol, runtime_checkable

import numpy as np

from .ir import LinearProgram

__all__ = [
    "SolverResult",
    "SolverBackend",
    "SolverError",
    "validate_warm_start",
]

#: The closed set of result statuses every backend maps onto.
STATUSES = ("optimal", "infeasible", "unbounded", "timeout", "error")


class SolverError(RuntimeError):
    """Raised by :meth:`SolverResult.require_optimal` on a non-optimal solve."""


def validate_warm_start(lp: LinearProgram, warm: Any) -> np.ndarray:
    """Check a ``warm_start`` vector against ``lp`` before handing it to
    a native solver.

    Native modeling layers silently truncate or mis-index a wrong-length
    start vector; validating here turns that into an immediate, explicit
    error.  Shared by every backend that accepts
    ``options={"warm_start": ...}``.
    """
    arr = np.asarray(warm, dtype=float).ravel()
    if len(arr) != lp.num_vars:
        raise ValueError(
            f"warm_start has {len(arr)} entries but "
            f"{lp.describe() or 'the program'} has {lp.num_vars} columns"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError("warm_start must contain only finite values")
    return arr


@dataclass(frozen=True, eq=False)
class SolverResult:
    """Uniform outcome of one backend solve.

    ``x`` is the primal solution in the IR's column order (``None``
    unless ``status == "optimal"``); ``extra`` carries backend-specific
    diagnostics (iteration counts, MIP gaps) that callers may surface
    but must not depend on.  ``eq=False`` because the ndarray field
    makes generated equality ambiguous.
    """

    status: str
    backend: str
    objective: float | None = None
    x: np.ndarray | None = None
    message: str = ""
    elapsed: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(
                f"unknown status {self.status!r}; choose from {STATUSES}"
            )

    @property
    def ok(self) -> bool:
        """True when the solve reached a proven optimum."""
        return self.status == "optimal"

    def require_optimal(self, context: str = "") -> "SolverResult":
        """Return self, or raise :class:`SolverError` with full context."""
        if self.ok:
            return self
        prefix = f"{context}: " if context else ""
        detail = f" ({self.message})" if self.message else ""
        raise SolverError(
            f"{prefix}backend {self.backend!r} returned "
            f"{self.status}{detail}"
        )


@runtime_checkable
class SolverBackend(Protocol):
    """What the rest of the repository knows about an LP/MILP solver.

    Implementations behave as stateless adapters: each ``solve`` call
    returns an independent result, so one backend instance can be
    shared process-wide (the registry does exactly that).  A backend
    with the ``resolve`` capability may keep internal model state
    between calls as a performance cache, but that state must never
    change results and must be safe to share across threads.
    """

    #: Stable registry name (``scipy-highs``, ``mip``, ``reference``).
    name: str

    def capabilities(self) -> frozenset[str]:
        """Declared abilities: a set drawn from ``{"lp", "milp",
        "sparse", "warm-start", "resolve", "duals",
        "dependency-free"}`` (extensible).

        ``warm-start`` — accepts ``options={"warm_start": x}`` (validated
        via :func:`validate_warm_start`); ``resolve`` — keeps solver
        models resident across calls and re-solves structure-identical
        programs by in-place mutation; ``duals`` — populates dual values
        and basis information in ``SolverResult.extra`` on LP optima.
        """
        ...

    def available(self) -> bool:
        """False when a soft dependency is missing in this environment."""
        ...

    def solve(
        self,
        lp: LinearProgram,
        *,
        time_limit: float | None = None,
        options: Mapping[str, Any] | None = None,
    ) -> SolverResult:
        """Solve ``lp`` and map the native outcome onto a SolverResult."""
        ...
