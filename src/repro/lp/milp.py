"""Exact solvers via mixed-integer programming (backend-neutral).

The paper proves its approximation guarantees analytically; to *measure*
ratios empirically we need the true optima.  On the paper's gadgets the optima
have closed forms (checked in the tests); on random instances we obtain them
from the MILPs assembled here:

* :func:`solve_active_time_exact` — the Section-3 IP with binary ``y`` and
  *continuous* ``x``: once the active-slot set is integral, a feasible
  fractional assignment implies a feasible integral one by flow integrality
  (the same argument the paper uses after rounding), so this formulation is
  exact while staying much smaller than a fully binary model.
* :func:`solve_busy_time_interval_exact` — busy time for interval jobs:
  assignment variables over (job, machine) plus busy indicators over
  (machine, interesting interval).
* :func:`solve_unbounded_span_exact` — the unbounded-capacity placement step
  (OPT_inf): start-time choice variables plus on/off slot indicators.  This
  replaces Khandekar et al.'s polynomial dynamic program with an exact
  pseudo-polynomial MILP producing the same optimal value (see DESIGN.md,
  substitution table).
* :func:`solve_busy_time_flexible_exact` — fully general (tiny instances):
  start choice x machine assignment x busy indicators.

All four require integral data; busy-time interval jobs may be real-valued
since only interesting-interval lengths enter the objective.

Every formulation is emitted as a :class:`~repro.solvers.ir.LinearProgram`
and routed through :func:`repro.solvers.solve_ir`, so ``backend=`` selects
any registered MILP backend (scipy-HiGHS by default).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from ..core.intervals import interesting_intervals
from ..core.jobs import Instance, Job
from ..core.validation import (
    require_capacity,
    require_integral,
    require_interval_jobs,
)
from ..solvers import LinearProgram, SolverBackend, solve_ir
from .model import build_active_time_model

__all__ = [
    "MilpResult",
    "solve_active_time_exact",
    "solve_busy_time_interval_exact",
    "solve_unbounded_span_exact",
    "solve_busy_time_flexible_exact",
]


@dataclass(frozen=True)
class MilpResult:
    """Optimal objective plus a decoded witness (algorithm specific)."""

    objective: float
    witness: dict

    def __float__(self) -> float:
        return self.objective


def _run_milp(
    c, a, lb, ub, integrality, *, backend=None, label: str = "MILP"
) -> np.ndarray:
    """Translate two-sided rows into the IR and route to a backend."""
    num_vars = len(np.asarray(c).ravel())
    lp = LinearProgram.from_two_sided(
        c,
        a,
        lb,
        ub,
        lb=np.zeros(num_vars),
        ub=np.ones(num_vars),
        integrality=integrality,
        label=label,
    )
    result = solve_ir(lp, backend=backend)
    result.require_optimal(label)
    return result.x


# ----------------------------------------------------------------------
# Active time (exact)
# ----------------------------------------------------------------------
def solve_active_time_exact(
    instance: Instance,
    g: int,
    *,
    backend: str | SolverBackend | None = None,
) -> MilpResult:
    """Exact minimum active time (Section 2/3 objective).

    Returns a :class:`MilpResult` whose witness contains ``active_slots``
    (sorted list) and the optimal objective (number of active slots).

    Raises ``RuntimeError`` when the instance is infeasible for capacity
    ``g`` (e.g. more than ``g`` unit jobs confined to one slot).
    """
    model = build_active_time_model(instance, g)
    if instance.n == 0:
        return MilpResult(0.0, {"active_slots": []})
    # y binary, x continuous: emitted directly by the model.
    result = solve_ir(
        model.to_linear_program(integral=True), backend=backend
    )
    result.require_optimal(f"active-time exact (g={g})")
    z = result.x
    y, _ = model.extract(z)
    active = [t for t in range(1, model.T + 1) if y[t] > 0.5]
    return MilpResult(float(len(active)), {"active_slots": active})


# ----------------------------------------------------------------------
# Busy time, interval jobs (exact)
# ----------------------------------------------------------------------
def solve_busy_time_interval_exact(
    instance: Instance,
    g: int,
    *,
    max_machines: int | None = None,
    backend: str | SolverBackend | None = None,
) -> MilpResult:
    """Exact minimum busy time for an interval-job instance.

    ``max_machines`` bounds the number of candidate machines (defaults to
    ``n``, always sufficient since each job alone on a machine is feasible).
    Symmetry is broken by allowing job ``k`` (in input order) only on machines
    ``0..k``.

    The witness maps ``"bundles"`` to a list of job-id lists, one per used
    machine.
    """
    require_interval_jobs(instance, "busy-time exact")
    require_capacity(g)
    n = instance.n
    if n == 0:
        return MilpResult(0.0, {"bundles": []})
    M = min(max_machines or n, n)
    segments = interesting_intervals(instance)
    seg_len = [b - a for a, b in segments]
    seg_jobs: list[list[int]] = []
    for a, b in segments:
        mid = 0.5 * (a + b)
        seg_jobs.append([k for k, j in enumerate(instance.jobs) if j.is_live_at(mid)])

    # Columns: z[k, m] for m <= min(k, M-1), then u[m, i].
    z_col: dict[tuple[int, int], int] = {}
    col = 0
    for k in range(n):
        for m in range(min(k + 1, M)):
            z_col[(k, m)] = col
            col += 1
    u_col: dict[tuple[int, int], int] = {}
    for m in range(M):
        for i in range(len(segments)):
            u_col[(m, i)] = col
            col += 1
    num_vars = col

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    lb: list[float] = []
    ub: list[float] = []
    row = 0

    # each job on exactly one machine
    for k in range(n):
        for m in range(min(k + 1, M)):
            rows.append(row)
            cols.append(z_col[(k, m)])
            vals.append(1.0)
        lb.append(1.0)
        ub.append(1.0)
        row += 1

    # capacity + busy indicator:  sum_{k live in seg i} z[k,m] <= g * u[m,i]
    for m in range(M):
        for i, live in enumerate(seg_jobs):
            touched = False
            for k in live:
                c = z_col.get((k, m))
                if c is not None:
                    rows.append(row)
                    cols.append(c)
                    vals.append(1.0)
                    touched = True
            if not touched:
                continue
            rows.append(row)
            cols.append(u_col[(m, i)])
            vals.append(-float(g))
            lb.append(-np.inf)
            ub.append(0.0)
            row += 1

    a = sparse.coo_matrix((vals, (rows, cols)), shape=(row, num_vars)).tocsr()
    c_vec = np.zeros(num_vars)
    for (m, i), cc in u_col.items():
        c_vec[cc] = seg_len[i]

    z = _run_milp(
        c=c_vec,
        a=a,
        lb=np.asarray(lb),
        ub=np.asarray(ub),
        integrality=np.ones(num_vars),
        backend=backend,
        label=f"busy-time interval exact (g={g})",
    )

    bundles: dict[int, list[int]] = {}
    for (k, m), cc in z_col.items():
        if z[cc] > 0.5:
            bundles.setdefault(m, []).append(instance.jobs[k].id)
    bundle_list = [sorted(v) for _, v in sorted(bundles.items())]
    objective = float(c_vec @ z)
    return MilpResult(objective, {"bundles": bundle_list})


# ----------------------------------------------------------------------
# Unbounded-capacity span minimization (OPT_inf)
# ----------------------------------------------------------------------
def solve_unbounded_span_exact(
    instance: Instance,
    *,
    backend: str | SolverBackend | None = None,
) -> MilpResult:
    """Exact ``OPT_inf``: place every job to minimize the busy-time span.

    Requires integral data; jobs start at integral times (for integral
    instances an optimal solution with integral starts always exists — shift
    every maximal busy block left until it hits a release-time constraint,
    which happens at integral offsets).

    Witness: ``{"starts": {job_id: start}}``.
    """
    require_integral(instance, "unbounded span")
    if instance.n == 0:
        return MilpResult(0.0, {"starts": {}})
    T = instance.horizon

    start_col: dict[tuple[int, int], int] = {}
    col = 0
    for job in instance.jobs:
        r, d = job.integral_window()
        p = job.integral_length()
        for s in range(r, d - p + 1):
            start_col[(job.id, s)] = col
            col += 1
    y_base = col
    num_vars = col + T  # y_t for t = 1..T at y_base + (t - 1)

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    lb: list[float] = []
    ub: list[float] = []
    row = 0

    # exactly one start per job
    for job in instance.jobs:
        r, d = job.integral_window()
        p = job.integral_length()
        for s in range(r, d - p + 1):
            rows.append(row)
            cols.append(start_col[(job.id, s)])
            vals.append(1.0)
        lb.append(1.0)
        ub.append(1.0)
        row += 1

    # machine on whenever some job runs:
    #   sum_{starts s of job j covering slot t} sigma_{j,s} <= y_t
    # grouped per (job, slot) keeps the matrix sparse.
    for job in instance.jobs:
        r, d = job.integral_window()
        p = job.integral_length()
        for t in range(r + 1, d + 1):
            covering = [
                start_col[(job.id, s)]
                for s in range(max(r, t - p), min(d - p, t - 1) + 1)
            ]
            if not covering:
                continue
            for c in covering:
                rows.append(row)
                cols.append(c)
                vals.append(1.0)
            rows.append(row)
            cols.append(y_base + t - 1)
            vals.append(-1.0)
            lb.append(-np.inf)
            ub.append(0.0)
            row += 1

    a = sparse.coo_matrix((vals, (rows, cols)), shape=(row, num_vars)).tocsr()
    c_vec = np.zeros(num_vars)
    c_vec[y_base:] = 1.0
    z = _run_milp(
        c=c_vec,
        a=a,
        lb=np.asarray(lb),
        ub=np.asarray(ub),
        integrality=np.ones(num_vars),
        backend=backend,
        label="unbounded span exact",
    )
    starts = {
        jid: float(s) for (jid, s), cc in start_col.items() if z[cc] > 0.5
    }
    return MilpResult(float(c_vec @ z), {"starts": starts})


# ----------------------------------------------------------------------
# Busy time, flexible jobs (exact; tiny instances)
# ----------------------------------------------------------------------
def solve_busy_time_flexible_exact(
    instance: Instance,
    g: int,
    *,
    max_machines: int | None = None,
    backend: str | SolverBackend | None = None,
) -> MilpResult:
    """Exact busy time for flexible jobs with bounded ``g`` (integral data).

    This is the heavyweight oracle used only in tests and small-scale
    benchmarks: variables couple start-time choice, machine assignment and
    per-slot busy indicators, so keep ``n`` and ``T`` small (``n <= 10``,
    ``T <= 40`` is comfortable).

    Witness: ``{"starts": {job_id: start}, "machines": {job_id: machine}}``.
    """
    require_integral(instance, "flexible busy-time exact")
    require_capacity(g)
    n = instance.n
    if n == 0:
        return MilpResult(0.0, {"starts": {}, "machines": {}})
    M = min(max_machines or n, n)
    T = instance.horizon

    w_col: dict[tuple[int, int, int], int] = {}  # (job_pos, start, machine)
    col = 0
    for k, job in enumerate(instance.jobs):
        r, d = job.integral_window()
        p = job.integral_length()
        for s in range(r, d - p + 1):
            for m in range(min(k + 1, M)):
                w_col[(k, s, m)] = col
                col += 1
    u_col: dict[tuple[int, int], int] = {}
    for m in range(M):
        for t in range(1, T + 1):
            u_col[(m, t)] = col
            col += 1
    num_vars = col

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    lb: list[float] = []
    ub: list[float] = []
    row = 0

    # one (start, machine) per job
    for k, job in enumerate(instance.jobs):
        r, d = job.integral_window()
        p = job.integral_length()
        for s in range(r, d - p + 1):
            for m in range(min(k + 1, M)):
                rows.append(row)
                cols.append(w_col[(k, s, m)])
                vals.append(1.0)
        lb.append(1.0)
        ub.append(1.0)
        row += 1

    # capacity + busy:  sum_{(k,s) covering t on m} w <= g * u[m,t]
    for m in range(M):
        for t in range(1, T + 1):
            touched = False
            for k, job in enumerate(instance.jobs):
                if m >= min(k + 1, M):
                    continue
                r, d = job.integral_window()
                p = job.integral_length()
                for s in range(max(r, t - p), min(d - p, t - 1) + 1):
                    rows.append(row)
                    cols.append(w_col[(k, s, m)])
                    vals.append(1.0)
                    touched = True
            if not touched:
                continue
            rows.append(row)
            cols.append(u_col[(m, t)])
            vals.append(-float(g))
            lb.append(-np.inf)
            ub.append(0.0)
            row += 1

    a = sparse.coo_matrix((vals, (rows, cols)), shape=(row, num_vars)).tocsr()
    c_vec = np.zeros(num_vars)
    for (m, t), cc in u_col.items():
        c_vec[cc] = 1.0

    z = _run_milp(
        c=c_vec,
        a=a,
        lb=np.asarray(lb),
        ub=np.asarray(ub),
        integrality=np.ones(num_vars),
        backend=backend,
        label=f"busy-time flexible exact (g={g})",
    )
    starts: dict[int, float] = {}
    machines: dict[int, int] = {}
    for (k, s, m), cc in w_col.items():
        if z[cc] > 0.5:
            jid = instance.jobs[k].id
            starts[jid] = float(s)
            machines[jid] = m
    return MilpResult(float(c_vec @ z), {"starts": starts, "machines": machines})
