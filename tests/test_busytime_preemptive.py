"""Tests for preemptive busy time (Theorems 6 and 7)."""

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.busytime import (
    greedy_unbounded_preemptive,
    mass_lower_bound,
    preemptive_bounded,
)
from repro.core import Instance
from repro.instances import random_flexible_instance


def preemptive_unbounded_opt_reference(inst: Instance) -> float:
    """Independent LP reference: min |O| s.t. each window holds p_j measure.

    With g unbounded all concurrent processing shares one machine, so the
    optimal preemptive busy time is the minimum measure of an open set O with
    ``|O ∩ [r_j, d_j)| >= p_j`` for every job — an LP over slot-opening
    variables for integral instances.
    """
    if inst.n == 0:
        return 0.0
    T = inst.horizon
    a, b = [], []
    for j in inst.jobs:
        row = [0.0] * T
        r, d = j.integral_window()
        for t in range(r, d):
            row[t] = -1.0
        a.append(row)
        b.append(-j.length)
    res = linprog(
        c=[1.0] * T, A_ub=a, b_ub=b, bounds=[(0, 1)] * T, method="highs"
    )
    assert res.status == 0
    return float(res.fun)


class TestGreedyUnbounded:
    def test_verifies(self, rng):
        for _ in range(10):
            inst = random_flexible_instance(7, 11, rng=rng)
            s = greedy_unbounded_preemptive(inst)
            s.verify()

    def test_exactness_against_lp(self, rng):
        """Theorem 6: the greedy is exact (checked against an independent LP)."""
        for _ in range(20):
            inst = random_flexible_instance(
                int(rng.integers(2, 9)), int(rng.integers(3, 12)), rng=rng
            )
            s = greedy_unbounded_preemptive(inst)
            assert s.total_busy_time == pytest.approx(
                preemptive_unbounded_opt_reference(inst), abs=1e-6
            )

    def test_single_machine_used(self, rng):
        inst = random_flexible_instance(6, 9, rng=rng)
        s = greedy_unbounded_preemptive(inst)
        assert s.machines in ([], [0])

    def test_empty(self):
        s = greedy_unbounded_preemptive(Instance(tuple()))
        assert s.total_busy_time == 0.0

    def test_rigid_job(self):
        inst = Instance.from_tuples([(0, 3, 3)])
        s = greedy_unbounded_preemptive(inst)
        assert s.total_busy_time == pytest.approx(3.0)

    def test_preemption_beats_nonpreemptive_sometimes(self):
        """Preemptive OPT_inf can be strictly below non-preemptive OPT_inf."""
        from repro.busytime import opt_infinity

        # J1 rigid [0,2); J2 rigid [3,5); J3 length 3 window [0,5): the
        # non-preemptive J3 must add at least 1 new unit; preemptive J3 can
        # split across [0,2) + [3,5) fully? it needs 3 <= 4 available: yes.
        inst = Instance.from_tuples([(0, 2, 2), (3, 5, 2), (0, 5, 3)])
        pre = greedy_unbounded_preemptive(inst).total_busy_time
        non = opt_infinity(inst).busy_time
        assert pre < non - 1e-9

    def test_pieces_within_windows(self, rng):
        for _ in range(8):
            inst = random_flexible_instance(6, 10, rng=rng)
            s = greedy_unbounded_preemptive(inst)
            for p in s.pieces:
                job = inst.job_by_id(p.job_id)
                assert p.start >= job.release - 1e-9
                assert p.end <= job.deadline + 1e-9


class TestPreemptiveBounded:
    def test_verifies(self, rng):
        for _ in range(10):
            inst = random_flexible_instance(7, 11, rng=rng)
            g = int(rng.integers(1, 4))
            s = preemptive_bounded(inst, g)
            s.verify()

    def test_theorem7_bound(self, rng):
        """busy <= OPT_inf(preemptive) + mass/g <= 2 OPT(preemptive, g)."""
        for _ in range(15):
            inst = random_flexible_instance(7, 11, rng=rng)
            g = int(rng.integers(1, 4))
            unbounded = greedy_unbounded_preemptive(inst).total_busy_time
            s = preemptive_bounded(inst, g)
            assert (
                s.total_busy_time
                <= unbounded + mass_lower_bound(inst, g) + 1e-6
            )
            # both quantities lower-bound the bounded preemptive optimum
            lower = max(unbounded, mass_lower_bound(inst, g))
            assert s.total_busy_time <= 2 * lower + 1e-6

    def test_capacity_respected(self, rng):
        for _ in range(8):
            inst = random_flexible_instance(8, 10, rng=rng)
            g = int(rng.integers(1, 3))
            s = preemptive_bounded(inst, g)
            s.verify()  # includes the per-machine capacity check

    def test_large_g_matches_unbounded(self, rng):
        inst = random_flexible_instance(6, 9, rng=rng)
        s = preemptive_bounded(inst, inst.n)
        unbounded = greedy_unbounded_preemptive(inst)
        assert s.total_busy_time == pytest.approx(
            unbounded.total_busy_time, abs=1e-6
        )

    def test_empty(self):
        assert preemptive_bounded(Instance(tuple()), 2).total_busy_time == 0.0
