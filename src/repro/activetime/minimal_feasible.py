"""Minimal feasible solutions — the 3-approximation of Theorem 1.

Definition 4: a feasible set of active slots is *minimal* when closing any
single slot destroys feasibility.  Theorem 1 shows that **any** minimal
feasible solution costs at most ``3 * OPT`` (and Figure 3 shows this is
asymptotically tight).

The algorithm is exactly the paper's: start from a feasible slot set and keep
closing slots, in any order, while the rest remains feasible (feasibility is
the Figure-2 max-flow probe).  The closing order does not affect the
worst-case guarantee but changes which minimal solution is found, so it is a
caller-visible knob — the Figure-3 experiment drives it adversarially, and
:mod:`repro.activetime.unit_jobs` relies on the left-to-right order being
optimal for unit jobs.
"""

from __future__ import annotations

from typing import Callable, Iterable, Literal, Sequence

import numpy as np

from ..core.jobs import Instance
from ..core.validation import require_capacity, require_integral
from ..flow.feasibility import ActiveTimeFeasibility
from .schedule import ActiveTimeSchedule, schedule_from_slots

__all__ = ["minimal_feasible_schedule", "close_slots_greedily", "CloseOrder"]

CloseOrder = Literal["left", "right", "inside_out", "random"]


def _ordering(
    order: CloseOrder | Sequence[int],
    candidates: list[int],
    rng: np.random.Generator | None,
) -> list[int]:
    """Resolve the closing order specification into a concrete slot list."""
    if not isinstance(order, str):
        explicit = [t for t in order if t in set(candidates)]
        rest = [t for t in candidates if t not in set(explicit)]
        return list(explicit) + rest
    if order == "left":
        return sorted(candidates)
    if order == "right":
        return sorted(candidates, reverse=True)
    if order == "inside_out":
        mid = (min(candidates) + max(candidates)) / 2 if candidates else 0
        return sorted(candidates, key=lambda t: abs(t - mid))
    if order == "random":
        gen = rng if rng is not None else np.random.default_rng()
        shuffled = list(candidates)
        gen.shuffle(shuffled)
        return shuffled
    raise ValueError(f"unknown closing order {order!r}")


def close_slots_greedily(
    instance: Instance,
    g: int,
    start_slots: Iterable[int],
    *,
    order: CloseOrder | Sequence[int] = "left",
    rng: np.random.Generator | None = None,
    oracle: ActiveTimeFeasibility | None = None,
) -> list[int]:
    """Close slots of ``start_slots`` one at a time while feasibility holds.

    Returns the resulting minimal feasible slot set (sorted).  Raises
    ``ValueError`` when ``start_slots`` is not feasible to begin with.
    """
    require_integral(instance)
    require_capacity(g)
    if oracle is None:
        oracle = ActiveTimeFeasibility(instance, g)
    active = set(start_slots)
    if not oracle.is_feasible(active):
        raise ValueError("starting slot set is infeasible; nothing to minimize")

    for t in _ordering(order, sorted(active), rng):
        trial = active - {t}
        if oracle.is_feasible(trial):
            active = trial
    return sorted(active)


def minimal_feasible_schedule(
    instance: Instance,
    g: int,
    *,
    order: CloseOrder | Sequence[int] = "left",
    rng: np.random.Generator | None = None,
    start_slots: Iterable[int] | None = None,
) -> ActiveTimeSchedule:
    """Compute a minimal feasible schedule (Theorem 1's 3-approximation).

    Parameters
    ----------
    order:
        Slot-closing order: ``"left"``, ``"right"``, ``"inside_out"``,
        ``"random"`` (seeded via ``rng``), or an explicit slot sequence to try
        first (remaining slots are appended in increasing order).  The paper
        allows *any* order (Definition 4's guarantee is order-free); the
        Figure-3 tightness experiment passes an adversarial explicit order.
    start_slots:
        Initial feasible set; defaults to all slots ``1..T``.

    Raises
    ------
    ValueError
        When the instance is infeasible even with every slot active.
    """
    require_integral(instance)
    require_capacity(g)
    if instance.n == 0:
        return ActiveTimeSchedule(instance, g, tuple(), {})
    oracle = ActiveTimeFeasibility(instance, g)
    initial = (
        list(start_slots)
        if start_slots is not None
        else list(range(1, instance.horizon + 1))
    )
    slots = close_slots_greedily(
        instance, g, initial, order=order, rng=rng, oracle=oracle
    )
    return schedule_from_slots(instance, g, slots, oracle=oracle)
