"""Optional backend: HiGHS driven directly through its python bindings.

Unlike the scipy adapter — which rebuilds a fresh HiGHS model inside
``linprog``/``milp`` on every call — this backend owns the model
lifecycle: each solved program leaves a **resident model** behind, keyed
by the program's *structure digest* (the sparsity pattern of both
constraint blocks plus the integrality mask).  A later solve whose
structure matches mutates only what changed — costs, variable bounds,
row bounds, individual matrix coefficients — and re-runs the resident
instance, which HiGHS warm-starts from the previous basis (LP) or from
the previous incumbent (MILP).  For the sweep workloads in this
repository, where one cell re-solves a chain of near-identical programs
per g value or rounding stage, that replaces full model-build +
cold-solve with a handful of coefficient updates and a few simplex
iterations.

Bindings are loaded lazily from two sources, in order:

1. the standalone ``highspy`` package (``pip install .[highs]``);
2. scipy's vendored build of the same nanobind bindings
   (``scipy.optimize._highspy``) — present wherever scipy >= 1.15 is,
   which makes ``resolve``/``duals`` available without an extra wheel.

When neither importable surface exists the backend reports itself
unavailable, exactly like the python-mip adapter, and the registry
routes around it.

Dual values and basis statuses from LP optima ride along in
``SolverResult.extra`` (``duals_ub``, ``duals_eq``, ``reduced_costs``,
``basis``), which unlocks rounding-anatomy analyses without a second
solve.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Any, Mapping

import numpy as np
from scipy import sparse

from .base import SolverResult, validate_warm_start
from .ir import LinearProgram

__all__ = ["HighsBackend", "structure_digest"]


def _load_bindings():
    """``(module, solver class, source tag)`` for the HiGHS bindings.

    Prefers the standalone ``highspy`` wheel; falls back to scipy's
    vendored build of the same nanobind module (its solver class is the
    private ``_Highs`` base that ``highspy.Highs`` extends — the full C
    API surface, minus sugar this adapter does not use).  Any import
    failure makes the backend unavailable rather than raising.
    """
    try:  # soft dependency: absence is a capability fact, not an error
        import highspy as mod

        return mod, mod.Highs, "highspy"
    except Exception:  # pragma: no cover - depends on the environment
        pass
    try:
        from scipy.optimize._highspy import _core as mod

        return mod, mod._Highs, "scipy-vendored"
    except Exception:  # pragma: no cover - exercised only without scipy
        return None, None, ""


_hs, _Highs, _SOURCE = _load_bindings()

#: Fraction of matrix coefficients allowed to change before a warm
#: mutation gives up on per-entry ``changeCoeff`` calls and repasses the
#: whole model (still on the resident instance, but without basis reuse).
_COEFF_REBUILD_FRACTION = 0.25


def structure_digest(lp: LinearProgram) -> str:
    """Stable hash of a program's *structure*: its block shapes, sparsity
    pattern and integrality mask.

    Two programs with equal digests differ only in coefficient values —
    objective, variable bounds, row bounds, matrix entries — which is
    exactly the set a resident model can mutate in place.  Integrality
    is part of the structure (an LP and its MILP sibling must never
    share a resident model: their solver state is incompatible).
    """
    h = hashlib.sha256()
    h.update(f"cols:{lp.num_vars}".encode())
    for tag, block in (("ub", lp.a_ub), ("eq", lp.a_eq)):
        if block is None:
            h.update(f"|{tag}:none".encode())
            continue
        h.update(f"|{tag}:{block.shape[0]}".encode())
        h.update(np.asarray(block.indptr, dtype=np.int64).tobytes())
        h.update(np.asarray(block.indices, dtype=np.int64).tobytes())
    h.update(b"|int:")
    h.update((lp.integrality_array() > 0).astype(np.uint8).tobytes())
    return h.hexdigest()


def _stacked_csc(lp: LinearProgram) -> sparse.csc_matrix:
    """Both constraint blocks (ub rows first, then eq rows) as one CSC
    matrix with sorted indices — the canonical layout of a resident
    model, and the layout coefficient diffs are computed in."""
    blocks = [b for b in (lp.a_ub, lp.a_eq) if b is not None]
    if not blocks:
        return sparse.csc_matrix((0, lp.num_vars))
    stacked = sparse.vstack(blocks).tocsc()
    stacked.sort_indices()
    return stacked


def _row_bounds(lp: LinearProgram) -> tuple[np.ndarray, np.ndarray]:
    """Two-sided row bounds in resident layout (ub block, then eq)."""
    lower: list[np.ndarray] = []
    upper: list[np.ndarray] = []
    if lp.b_ub is not None:
        lower.append(np.full(len(lp.b_ub), -np.inf))
        upper.append(np.asarray(lp.b_ub, dtype=float))
    if lp.b_eq is not None:
        eq = np.asarray(lp.b_eq, dtype=float)
        lower.append(eq)
        upper.append(eq)
    if not lower:
        return np.zeros(0), np.zeros(0)
    return np.concatenate(lower), np.concatenate(upper)


def _feasible_point(
    lp: LinearProgram, x: np.ndarray, tol: float = 1e-6
) -> bool:
    """Is ``x`` feasible for ``lp`` within solver tolerance — bounds,
    both constraint blocks, and integrality?"""
    lb, ub = lp.bounds_arrays()
    if np.any(x < lb - tol) or np.any(x > ub + tol):
        return False
    if lp.a_ub is not None and np.any(
        lp.a_ub @ x > np.asarray(lp.b_ub, dtype=float) + tol
    ):
        return False
    if lp.a_eq is not None and np.any(
        np.abs(lp.a_eq @ x - np.asarray(lp.b_eq, dtype=float)) > tol
    ):
        return False
    mask = lp.integrality_array() > 0
    return bool(np.all(np.abs(x[mask] - np.round(x[mask])) <= tol))


class _ResidentModel:
    """One HiGHS instance kept hot for a structure class of programs.

    Holds the last-passed coefficient arrays (for diffing), the last
    basis/solution (for explicit warm starts) and a per-model lock so
    concurrent serving threads that hit the same structure serialize on
    the model instead of corrupting it.
    """

    __slots__ = (
        "digest",
        "highs",
        "relax",
        "relax_basis",
        "indptr",
        "indices",
        "data",
        "c",
        "lb",
        "ub",
        "row_lower",
        "row_upper",
        "num_ub_rows",
        "is_milp",
        "basis",
        "last_x",
        "solves",
        "lock",
    )

    def __init__(self, digest: str) -> None:
        self.digest = digest
        self.highs = None  # built lazily under ``lock``
        self.relax = None  # MILP-only: resident LP-relaxation twin
        self.relax_basis = None
        self.solves = 0
        self.basis = None
        self.last_x = None
        self.lock = threading.Lock()


class HighsBackend:
    """LP/MILP via resident HiGHS models with warm-start re-solve chains.

    Parameters
    ----------
    max_resident:
        Bound on the per-process resolve cache; least-recently-used
        resident models are dropped first.  Models are only a cache —
        eviction affects speed, never results.
    """

    name = "highs"

    def __init__(self, max_resident: int = 8) -> None:
        if max_resident < 1:
            raise ValueError(
                f"max_resident must be >= 1, got {max_resident}"
            )
        self.max_resident = max_resident
        self._models: OrderedDict[str, _ResidentModel] = OrderedDict()
        self._lock = threading.Lock()
        #: Warm re-solves served from a resident model (process lifetime).
        self.resolve_hits = 0
        #: Cold builds (first sight of a structure, or post-eviction).
        self.resolve_misses = 0
        #: Solves that actually reused a basis/incumbent warm start.
        self.warm_starts = 0
        #: MILP re-solves skipped via the LP-relaxation bound probe.
        self.bound_probe_skips = 0

    def capabilities(self) -> frozenset[str]:
        return frozenset(
            {"lp", "milp", "sparse", "warm-start", "resolve", "duals"}
        )

    def available(self) -> bool:
        return _Highs is not None

    @staticmethod
    def unavailable_reason() -> str:
        """Human-readable install hint for menus and error messages."""
        return (
            "highspy is not installed (pip install 'highspy>=1.7' or "
            "pip install '.[highs]'; scipy>=1.15 vendors the bindings)"
        )

    # ------------------------------------------------------------------
    def resolve_stats(self) -> dict[str, int]:
        """Resolve-cache counters plus the resident-model count.

        ``hits``/``misses`` count structure lookups; ``warm_starts``
        counts solves that actually reused a basis or incumbent;
        ``bound_probe_skips`` counts MILP re-solves proven optimal by
        the resident LP-relaxation bound and skipped outright.
        """
        with self._lock:
            return {
                "hits": self.resolve_hits,
                "misses": self.resolve_misses,
                "resident": len(self._models),
                "warm_starts": self.warm_starts,
                "bound_probe_skips": self.bound_probe_skips,
            }

    def clear_resident(self) -> None:
        """Drop every resident model (results are unaffected)."""
        with self._lock:
            self._models.clear()

    # ------------------------------------------------------------------
    def solve(
        self,
        lp: LinearProgram,
        *,
        time_limit: float | None = None,
        options: Mapping[str, Any] | None = None,
    ) -> SolverResult:
        if _Highs is None:
            raise RuntimeError(
                f"backend {self.name!r} unavailable: "
                f"{self.unavailable_reason()}"
            )
        start = time.perf_counter()
        if lp.num_vars == 0:
            return SolverResult(
                status="optimal",
                backend=self.name,
                objective=0.0,
                x=np.zeros(0),
                elapsed=time.perf_counter() - start,
            )
        options = dict(options or {})
        warm = options.pop("warm_start", None)
        if warm is not None:
            warm = validate_warm_start(lp, warm)
        use_resolve = bool(options.pop("resolve", True))

        digest = structure_digest(lp)
        with self._lock:
            resident = self._models.get(digest) if use_resolve else None
            if resident is None:
                resident = _ResidentModel(digest)
                if use_resolve:
                    self._models[digest] = resident
                    while len(self._models) > self.max_resident:
                        self._models.popitem(last=False)
            else:
                self._models.move_to_end(digest)

        with resident.lock:
            if resident.highs is None:
                self._install(resident, lp)
                mode = "cold"
            else:
                mode = self._mutate(resident, lp)
            with self._lock:
                if mode == "cold":
                    self.resolve_misses += 1
                else:
                    self.resolve_hits += 1
            return self._run(
                resident, lp, warm, time_limit, options, mode, start
            )

    # ------------------------------------------------------------------
    # Model construction and mutation
    # ------------------------------------------------------------------
    def _install(self, resident: _ResidentModel, lp: LinearProgram) -> None:
        """Cold path: build a fresh HiGHS instance for this structure."""
        resident.highs = _Highs()
        resident.highs.setOptionValue("output_flag", False)
        self._pass_model(resident, lp)

    def _pass_model(self, resident: _ResidentModel, lp: LinearProgram) -> None:
        """(Re)load the full model into the resident instance."""
        n = lp.num_vars
        stacked = _stacked_csc(lp)
        row_lower, row_upper = _row_bounds(lp)
        lb, ub = lp.bounds_arrays()

        model = _hs.HighsLp()
        model.num_col_ = n
        model.num_row_ = stacked.shape[0]
        model.col_cost_ = np.asarray(lp.c, dtype=float)
        model.col_lower_ = lb
        model.col_upper_ = ub
        model.row_lower_ = row_lower
        model.row_upper_ = row_upper
        model.a_matrix_.format_ = _hs.MatrixFormat.kColwise
        model.a_matrix_.start_ = np.asarray(stacked.indptr, dtype=np.int32)
        model.a_matrix_.index_ = np.asarray(stacked.indices, dtype=np.int32)
        model.a_matrix_.value_ = np.asarray(stacked.data, dtype=float)
        if lp.is_milp:
            mask = lp.integrality_array() > 0
            model.integrality_ = [
                _hs.HighsVarType.kInteger if m else
                _hs.HighsVarType.kContinuous
                for m in mask
            ]
        status = resident.highs.passModel(model)
        if status == _hs.HighsStatus.kError:
            raise RuntimeError(
                f"HiGHS rejected the model for {lp.describe()}"
            )
        if lp.is_milp:
            # Resident LP-relaxation twin: re-solved warm (one basis
            # hop) before each MILP re-solve, its bound lets the chain
            # prove the previous optimum still optimal and skip the
            # full MIP run — see ``_incumbent_shortcut``.
            if resident.relax is None:
                resident.relax = _Highs()
                resident.relax.setOptionValue("output_flag", False)
            model.integrality_ = []
            resident.relax.passModel(model)
        else:
            resident.relax = None
        resident.relax_basis = None

        resident.indptr = np.asarray(stacked.indptr, dtype=np.int64)
        resident.indices = np.asarray(stacked.indices, dtype=np.int64)
        resident.data = np.asarray(stacked.data, dtype=float)
        resident.c = np.asarray(lp.c, dtype=float)
        resident.lb, resident.ub = lb, ub
        resident.row_lower, resident.row_upper = row_lower, row_upper
        resident.num_ub_rows = (
            0 if lp.b_ub is None else int(len(lp.b_ub))
        )
        resident.is_milp = lp.is_milp
        resident.basis = None
        resident.last_x = None

    def _mutate(self, resident: _ResidentModel, lp: LinearProgram) -> str:
        """Warm path: apply coefficient diffs to the resident model.

        Returns the mode actually achieved: ``"warm"`` when in-place
        mutation sufficed, ``"repass"`` when too many matrix entries
        changed and the model was re-passed wholesale (resident
        instance kept, basis discarded).
        """
        n = lp.num_vars
        # The relaxation twin (MILP residents only) receives every
        # mutation in lockstep so its bound probes always describe the
        # *current* program.
        targets = [resident.highs]
        if resident.relax is not None:
            targets.append(resident.relax)

        stacked = _stacked_csc(lp)
        data = np.asarray(stacked.data, dtype=float)
        changed = np.flatnonzero(data != resident.data)
        if len(changed) > max(64, _COEFF_REBUILD_FRACTION * len(data)):
            self._pass_model(resident, lp)
            return "repass"

        c = np.asarray(lp.c, dtype=float)
        if not np.array_equal(c, resident.c):
            for h in targets:
                h.changeColsCost(n, np.arange(n, dtype=np.int32), c)
            resident.c = c

        lb, ub = lp.bounds_arrays()
        if not (
            np.array_equal(lb, resident.lb)
            and np.array_equal(ub, resident.ub)
        ):
            for h in targets:
                h.changeColsBounds(n, np.arange(n, dtype=np.int32), lb, ub)
            resident.lb, resident.ub = lb, ub

        row_lower, row_upper = _row_bounds(lp)
        rows_changed = np.flatnonzero(
            (row_lower != resident.row_lower)
            | (row_upper != resident.row_upper)
        )
        for r in rows_changed:
            for h in targets:
                h.changeRowBounds(
                    int(r), float(row_lower[r]), float(row_upper[r])
                )
        if len(rows_changed):
            resident.row_lower, resident.row_upper = row_lower, row_upper

        if len(changed):
            cols = (
                np.searchsorted(resident.indptr, changed, side="right") - 1
            )
            for k, col in zip(changed, cols):
                for h in targets:
                    h.changeCoeff(
                        int(resident.indices[k]), int(col), float(data[k])
                    )
            resident.data = data
        return "warm"

    # ------------------------------------------------------------------
    # Solve and extraction
    # ------------------------------------------------------------------
    def _run(
        self,
        resident: _ResidentModel,
        lp: LinearProgram,
        warm: np.ndarray | None,
        time_limit: float | None,
        options: dict[str, Any],
        mode: str,
        start: float,
    ) -> SolverResult:
        h = resident.highs
        if (
            resident.is_milp
            and mode == "warm"
            and not options
            and resident.last_x is not None
        ):
            proven = self._incumbent_shortcut(resident, lp, start)
            if proven is not None:
                resident.solves += 1
                with self._lock:
                    self.warm_starts += 1
                    self.bound_probe_skips += 1
                return proven
        # Resident instances retain options between solves, so the time
        # limit must be (re)set every call — including back to infinity.
        h.setOptionValue(
            "time_limit",
            float(time_limit) if time_limit is not None else _hs.kHighsInf,
        )
        for key, value in options.items():
            if h.setOptionValue(key, value) == _hs.HighsStatus.kError:
                raise ValueError(
                    f"HiGHS rejected option {key!r}={value!r}"
                )

        start_x = warm
        if start_x is None and mode == "warm" and resident.last_x is not None:
            start_x = resident.last_x
        warm_used = False
        if resident.is_milp and start_x is not None:
            solution = _hs.HighsSolution()
            solution.col_value = np.asarray(start_x, dtype=float)
            h.setSolution(solution)
            warm_used = True
        elif mode == "warm" and resident.basis is not None:
            h.setBasis(resident.basis)
            warm_used = True
        if warm_used:
            with self._lock:
                self.warm_starts += 1

        h.run()
        model_status = h.getModelStatus()
        if model_status == _hs.HighsModelStatus.kUnboundedOrInfeasible:
            # Presolve could not tell the two apart; re-run without it
            # to get a definitive status (the same disambiguation
            # scipy's _linprog_highs applies).
            h.setOptionValue("presolve", "off")
            h.run()
            model_status = h.getModelStatus()
            h.setOptionValue("presolve", "choose")
        status = self._map_status(model_status, time_limit)
        elapsed = time.perf_counter() - start
        resident.solves += 1

        extra: dict[str, Any] = {
            "resolve": mode,
            "structure": resident.digest[:16],
            "structure_hit": mode != "cold",
            "warm_start_used": warm_used,
            "highs_source": _SOURCE,
        }
        info = h.getInfo()
        extra["simplex_iterations"] = int(info.simplex_iteration_count)
        if resident.is_milp:
            extra["mip_nodes"] = int(info.mip_node_count)

        if status != "optimal":
            resident.basis = None
            resident.last_x = None
            return SolverResult(
                status=status,
                backend=self.name,
                message=h.modelStatusToString(model_status),
                elapsed=elapsed,
                extra=extra,
            )

        solution = h.getSolution()
        x = np.array(solution.col_value, dtype=float)
        resident.last_x = x.copy()
        if not resident.is_milp:
            basis = h.getBasis()
            resident.basis = basis if basis.valid else None
            if solution.dual_valid:
                row_dual = np.array(solution.row_dual, dtype=float)
                split = resident.num_ub_rows
                extra["duals_ub"] = row_dual[:split]
                extra["duals_eq"] = row_dual[split:]
                extra["reduced_costs"] = np.array(
                    solution.col_dual, dtype=float
                )
            if basis.valid:
                extra["basis"] = {
                    "col_status": [int(s) for s in basis.col_status],
                    "row_status": [int(s) for s in basis.row_status],
                }
        return SolverResult(
            status="optimal",
            backend=self.name,
            objective=float(info.objective_function_value),
            x=x,
            elapsed=elapsed,
            extra=extra,
        )

    def _incumbent_shortcut(
        self,
        resident: _ResidentModel,
        lp: LinearProgram,
        start: float,
    ) -> SolverResult | None:
        """MILP warm re-solves: prove the previous optimum still optimal.

        A HiGHS MILP ``run()`` always pays full presolve plus a
        from-scratch root relaxation — the dominant fixed cost of a
        re-solve chain, warm start or not.  This probe re-solves the
        resident LP-relaxation twin instead (typically a few dual
        simplex iterations from its previous basis) and compares the
        bound — rounded up when the objective is provably integral —
        against the previous incumbent.  A still-feasible incumbent
        that meets the bound *is* the optimum, so the MIP run is
        skipped outright.  Returns ``None`` when no proof is available;
        the caller falls through to the full solve, so this is only
        ever a fast path, never a semantic one.
        """
        relax = resident.relax
        if relax is None:
            return None
        x_prev = resident.last_x
        if not _feasible_point(lp, x_prev):
            return None
        relax.setOptionValue("time_limit", _hs.kHighsInf)
        if resident.relax_basis is not None:
            relax.setBasis(resident.relax_basis)
        relax.run()
        if relax.getModelStatus() != _hs.HighsModelStatus.kOptimal:
            return None
        basis = relax.getBasis()
        resident.relax_basis = basis if basis.valid else None
        info = relax.getInfo()
        bound = float(info.objective_function_value)
        c = np.asarray(lp.c, dtype=float)
        mask = lp.integrality_array() > 0
        if np.all(c[~mask] == 0.0) and np.all(c == np.floor(c)):
            # The objective is supported on integer variables with
            # integer coefficients, so the MILP optimum is an integer
            # and the relaxation bound legitimately rounds up.
            bound = float(np.ceil(bound - 1e-6))
        objective = float(np.dot(c, x_prev))
        if objective > bound + 1e-6:
            return None
        return SolverResult(
            status="optimal",
            backend=self.name,
            objective=objective,
            x=x_prev.copy(),
            elapsed=time.perf_counter() - start,
            extra={
                "resolve": "warm",
                "shortcut": "incumbent-bound",
                "structure": resident.digest[:16],
                "structure_hit": True,
                "warm_start_used": True,
                "bound_probe_skip": True,
                "highs_source": _SOURCE,
                "simplex_iterations": int(info.simplex_iteration_count),
                "mip_nodes": 0,
            },
        )

    @staticmethod
    def _map_status(model_status, time_limit) -> str:
        M = _hs.HighsModelStatus
        if model_status in (M.kOptimal, M.kModelEmpty):
            return "optimal"
        if model_status == M.kInfeasible:
            return "infeasible"
        if model_status == M.kUnbounded:
            return "unbounded"
        if model_status in (M.kTimeLimit, M.kIterationLimit):
            # A budgeted run out of budget is a timeout; the same
            # statuses without a budget indicate solver trouble.
            return "timeout" if time_limit is not None else "error"
        return "error"
