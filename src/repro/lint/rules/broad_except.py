"""REP002 — overbroad exception handling on cancellation-critical paths.

Coroutines and pool/thread worker paths are where a swallowed
``asyncio.CancelledError`` or ``KeyboardInterrupt`` turns into a wedged
event loop, a stream that never ends, or a worker grinding long after
Ctrl-C (every one of those happened here: the PR 5 SIGTERM-stranded
workers, the PR 9 teardown races).  Inside those contexts this rule
flags handlers that catch ``Exception``, ``BaseException`` or use a
bare ``except`` — and handlers that catch ``CancelledError`` /
``KeyboardInterrupt`` *explicitly* but fail to re-raise them.

A flagged handler is accepted when either:

* its body re-raises (contains a bare ``raise``), or
* an **earlier** sibling handler of the same ``try`` catches the
  context's critical exception (``CancelledError`` for coroutines,
  ``KeyboardInterrupt`` for worker paths) and re-raises it.

Worker paths are found by a name-level call graph: anything handed to
``Thread(target=...)`` / ``Process(target=...)`` / ``pool.submit(...)``
anywhere in the tree, plus everything those functions call.
Deliberate swallows (teardown best-effort cleanup, ``__del__``) get a
``# lint: waive[REP002] <reason>`` so intent is recorded at the site.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..base import Finding, Rule, TreeContext, register
from ..callgraph import worker_path_names

_FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)

_BROAD = {"Exception", "BaseException"}
_CRITICAL = {"CancelledError", "KeyboardInterrupt"}


def _exception_names(expr: ast.AST | None) -> Set[str]:
    """Bare names of the exception classes one handler catches."""
    if expr is None:
        return {"<bare>"}
    if isinstance(expr, ast.Name):
        return {expr.id}
    if isinstance(expr, ast.Attribute):  # asyncio.CancelledError
        return {expr.attr}
    if isinstance(expr, ast.Tuple):
        names: Set[str] = set()
        for item in expr.elts:
            names |= _exception_names(item)
        return names
    return set()


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains a bare ``raise`` (any depth,
    excluding nested function definitions)."""
    stack: List[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
        if isinstance(node, _FuncDef + (ast.Lambda,)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _critical_sibling_reraises(
    try_node: ast.Try, upto: int, wanted: str
) -> bool:
    """Whether a handler before index ``upto`` catches ``wanted`` and
    re-raises it."""
    for handler in try_node.handlers[:upto]:
        if wanted in _exception_names(handler.type) and _reraises(handler):
            return True
    return False


def _scan_function(
    func: ast.AST,
    *,
    coroutine: bool,
    worker: bool,
    report,
) -> None:
    wanted = "CancelledError" if coroutine else "KeyboardInterrupt"
    context = "coroutine" if coroutine else "worker path"
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, _FuncDef):
            continue  # nested defs get their own classification pass
        stack.extend(ast.iter_child_nodes(node))
        if not isinstance(node, ast.Try):
            continue
        for idx, handler in enumerate(node.handlers):
            caught = _exception_names(handler.type)
            broad = bool(caught & _BROAD) or "<bare>" in caught
            critical = caught & _CRITICAL
            if not broad and not critical:
                continue
            if _reraises(handler):
                continue
            if broad and _critical_sibling_reraises(node, idx, wanted):
                continue
            if broad:
                label = (
                    "bare except" if "<bare>" in caught
                    else f"except {'/'.join(sorted(caught & _BROAD))}"
                )
                report(
                    handler,
                    f"{label} in {context} can swallow "
                    f"{wanted}; re-raise it first (sibling "
                    f"`except {wanted}: raise`) or re-raise in the "
                    "handler",
                )
            else:
                # Explicitly catching the critical exception without
                # re-raising is the swallow itself.
                names = "/".join(sorted(critical))
                report(
                    handler,
                    f"except {names} in {context} without re-raise "
                    "swallows cancellation/interrupt",
                )


@register
class BroadExceptRule(Rule):
    __doc__ = __doc__

    id = "REP002"
    title = "broad except swallows CancelledError/KeyboardInterrupt"

    def check_tree(self, tree: TreeContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        workers = worker_path_names(m.tree for m in tree.modules)
        for module in tree.modules:
            def report(node: ast.AST, message: str,
                       _module=module) -> None:
                findings.append(_module.finding("REP002", node, message))

            for node in ast.walk(module.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    _scan_function(
                        node, coroutine=True, worker=False, report=report
                    )
                elif (
                    isinstance(node, ast.FunctionDef)
                    and node.name in workers
                ):
                    _scan_function(
                        node, coroutine=False, worker=True, report=report
                    )
        return iter(findings)
