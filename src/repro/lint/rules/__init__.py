"""Project-specific rule modules; importing this package registers them.

Each module registers one rule via :func:`repro.lint.base.register`;
the registry (:data:`repro.lint.base.RULES`) is what the runner and the
CLI's ``--list-rules`` iterate.
"""

from . import (  # noqa: F401  (imported for registration side effects)
    async_blocking,
    broad_except,
    determinism,
    fork_safety,
    locks,
    metrics_hygiene,
)
