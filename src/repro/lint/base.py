"""Core types of the ``repro.lint`` framework: findings, rules, contexts.

A *rule* is a project-specific static check with a stable ID
(``REP###``), a one-line title and a docstring explaining what it
catches and which historical bug motivated it.  Rules subscribe to two
phases:

* :meth:`Rule.check_module` — runs once per parsed module, for purely
  local checks (AST patterns inside one file);
* :meth:`Rule.check_tree` — runs once over the whole scanned tree, for
  cross-module checks (name uniqueness, catalog parity, call-graph
  reachability).

Findings carry a root-relative path, a 1-based line, the rule ID and a
message; the runner applies per-line waivers (see
:mod:`repro.lint.waivers`) before reporting.  ``REP000`` is the
framework's own meta rule (syntax errors, malformed or reason-less
waivers) and cannot be waived.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Sequence, Type

from .waivers import Waiver, parse_waivers

__all__ = [
    "META_RULE_ID",
    "Finding",
    "ModuleContext",
    "Rule",
    "RULES",
    "TreeContext",
    "register",
]

#: The framework's own rule ID: parse failures and waiver hygiene.
META_RULE_ID = "REP000"


@dataclass(frozen=True, order=True)
class Finding:
    """One reported violation, anchored to a file and line."""

    path: str  #: root-relative POSIX path
    line: int  #: 1-based; 0 for whole-file findings
    rule: str  #: rule ID (``REP###``)
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


class ModuleContext:
    """One parsed module: source, AST, waivers, and path bookkeeping."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.waivers: Dict[int, Waiver] = parse_waivers(self.lines)

    @property
    def in_serve_package(self) -> bool:
        """Whether this module belongs to ``repro.serve`` (REP001 scopes
        its banned-import check there)."""
        parts = Path(self.rel).parts
        return "serve" in parts and "repro" in parts

    def finding(self, rule: str, node: ast.AST | int, message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 0)
        return Finding(path=self.rel, line=line, rule=rule, message=message)


class TreeContext:
    """The whole scanned tree, for cross-module rules."""

    def __init__(self, root: Path, modules: Sequence[ModuleContext]) -> None:
        self.root = root
        self.modules = list(modules)

    def module(self, rel: str) -> ModuleContext | None:
        for mod in self.modules:
            if mod.rel == rel:
                return mod
        return None


class Rule:
    """Base class for one registered check.

    Subclasses set ``id`` and ``title`` and override one or both check
    phases.  The class docstring is the rule's long-form documentation
    (shown by ``repro lint --list-rules`` and mirrored in the README
    rule catalog).
    """

    id: str = ""
    title: str = ""

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        return ()

    def check_tree(self, tree: TreeContext) -> Iterable[Finding]:
        return ()

    @classmethod
    def describe(cls) -> str:
        return (cls.__doc__ or "").strip()


#: Registered rule singletons, keyed by ID, in registration order.
RULES: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its ID."""
    if not rule_cls.id or not rule_cls.id.startswith("REP"):
        raise ValueError(f"rule {rule_cls.__name__} needs a REP### id")
    if rule_cls.id in RULES:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    RULES[rule_cls.id] = rule_cls()
    return rule_cls
